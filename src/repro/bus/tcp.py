"""Genuine multi-process distributed operation over TCP.

The in-process :class:`~repro.bus.bus.SoftwareBus` simulates machines as
threads.  This module runs each machine as a real OS process (a *machine
daemon*) connected to a central bus process over TCP — the closest a
single host gets to the paper's heterogeneous network of workstations:

- every message and state packet crossing machines travels as canonical
  abstract bytes over a real socket;
- each daemon decodes with its own :class:`MachineProfile`, so moving a
  module between daemons with different simulated architectures
  exercises the full native -> canonical -> native path across process
  boundaries;
- module preparation (the source transformation) happens once, in the
  bus process, ahead of time; daemons receive the already-prepared
  source, mirroring the paper's "prepare when the original program is
  compiled".

Wire protocol: length-prefixed frames whose payload is one self-described
value in our own canonical encoding (dogfooding ``repro.state.encoding``).
Each frame is ``[kind, seq, command, args...]`` with ``kind`` in
``req``/``rep``/``evt``.

Busy links coalesce deliveries: many message wires ride one
``deliver_batch`` event frame (one TCP write, one ``tcp.send_frame``
span), and daemon-side tunneled writes return as ``write_batch`` — see
:mod:`repro.bus.batch` and docs/tcp-protocol.md for the blob layout.
The per-message ``deliver``/``write`` frames remain valid; batching is a
send-side optimization, not a protocol break.
"""

from __future__ import annotations

import socket
import struct
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bus.batch import unpack_batch
from repro.bus.machine import Host
from repro.bus.spec import (
    BindingSpec,
    Configuration,
    ModuleSpec,
    spec_from_abstract,
)
from repro.bus.transport import ModuleHost
from repro.core.transformer import prepare_module
from repro.errors import (
    BusError,
    InjectedFault,
    ReconfigTimeoutError,
    TransportError,
    UnknownModuleError,
)
from repro.runtime import faults, telemetry
from repro.runtime.faults import RetryPolicy
from repro.runtime.mh import SleepPolicy
from repro.state.encoding import decode_any, encode_any
from repro.state.machine import MACHINES, MachineProfile, profile_from_abstract

__all__ = [
    "DistributedBus",
    "MachineDaemon",
    "SocketChannel",
    "daemon_entry",
    "recv_frame",
    "send_frame",
    "spec_from_abstract",
    "spec_to_abstract",
    "profile_from_abstract",
    "profile_to_abstract",
]

_FRAME_HEADER = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def send_frame(sock: socket.socket, value: object) -> None:
    if faults.fire("tcp.send_frame"):
        telemetry.count("tcp.frames_dropped")
        return  # injected drop: the frame is lost on the wire
    with telemetry.span("tcp.send_frame") as span:
        payload = encode_any(value)
        if len(payload) > _MAX_FRAME:
            raise TransportError(f"frame too large ({len(payload)} bytes)")
        span.set(bytes=len(payload))
        header = _FRAME_HEADER.pack(len(payload))
        try:
            # Gather write: header and payload leave in one syscall with
            # no concatenation copy of the payload (frames carry whole
            # state packets, so the copy was O(packet) per send).
            sent = sock.sendmsg([header, payload])
            total = len(header) + len(payload)
            if sent < total:  # pragma: no cover - tiny socket buffers only
                sock.sendall(memoryview(header + payload)[sent:])
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
    rec = telemetry.recorder
    if rec is not None:
        rec.count("tcp.frames_sent")
        rec.count("tcp.bytes_sent", n=len(payload))


def recv_frame(sock: socket.socket) -> object:
    while True:
        dropped = faults.fire("tcp.recv_frame")  # may raise InjectedFault
        header = _recv_exact(sock, _FRAME_HEADER.size)
        (length,) = _FRAME_HEADER.unpack(header)
        if length > _MAX_FRAME:
            raise TransportError(f"oversized frame announced ({length} bytes)")
        # The span covers payload read + decode, not the idle wait for
        # the header — a listener parked between frames is not "receiving".
        with telemetry.span("tcp.recv_frame", bytes=length):
            payload = _recv_exact(sock, length)
            if dropped:
                telemetry.count("tcp.frames_dropped")
                continue  # injected drop: discard this frame, read the next
            value = decode_any(payload)
        rec = telemetry.recorder
        if rec is not None:
            rec.count("tcp.frames_received")
            rec.count("tcp.bytes_received", n=length)
        return value


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class SocketChannel:
    """A connected socket as a frame channel.

    Adapts the length-prefixed framing above to the channel protocol
    consumed by :class:`~repro.bus.transport.Link` (``send``/``recv``/
    ``close``), so TCP machine daemons and pipe workers speak to the bus
    through the same link machinery.
    """

    __slots__ = ("sock",)

    def __init__(self, sock: socket.socket):
        self.sock = sock

    def send(self, value: object) -> None:
        send_frame(self.sock, value)

    def recv(self) -> object:
        return recv_frame(self.sock)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Spec serialization (canonical forms live with the types; these aliases
# keep the historical tcp.py import surface working)
# ---------------------------------------------------------------------------


def spec_to_abstract(spec: ModuleSpec, prepared_source: str) -> dict:
    return spec.to_abstract(prepared_source)


def profile_to_abstract(profile: MachineProfile) -> dict:
    return profile.to_abstract()


# ---------------------------------------------------------------------------
# Machine daemon (runs in its own OS process)
# ---------------------------------------------------------------------------


class MachineDaemon:
    """One simulated machine as a real process hosting module threads.

    All module hosting — lifecycle, delivery, divulge push, host-local
    routes — lives in the shared :class:`~repro.bus.transport.ModuleHost`
    core; this class only owns the socket plumbing around it.  Pipe
    workers (:mod:`repro.bus.procpool`) wrap the very same core, so the
    two remote placements cannot drift apart."""

    def __init__(
        self,
        machine_name: str,
        profile: MachineProfile,
        bus_address: Tuple[str, int],
        sleep_scale: float = 0.0,
    ):
        self.machine_name = machine_name
        self.profile = profile
        self.bus_address = bus_address
        self.sleep_policy = SleepPolicy(scale=sleep_scale)
        self.host = Host(name=machine_name, profile=profile)
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self.core = ModuleHost(
            machine_name, self.host, self.sleep_policy, self.send_event
        )
        self.modules = self.core.modules  # shared dict (legacy attribute)

    # -- plumbing ---------------------------------------------------------------

    def send_event(self, command: List[object]) -> None:
        with self._send_lock:
            assert self._sock is not None
            send_frame(self._sock, ["evt", 0] + command)

    def _reply(self, seq: int, value: object) -> None:
        with self._send_lock:
            assert self._sock is not None
            send_frame(self._sock, ["rep", seq, value])

    def _reply_error(self, seq: int, message: str) -> None:
        with self._send_lock:
            assert self._sock is not None
            send_frame(self._sock, ["err", seq, message])

    # -- main loop -----------------------------------------------------------------

    def run(self) -> None:
        self._sock = socket.create_connection(self.bus_address, timeout=30)
        self._sock.settimeout(None)
        # Frames are small and latency-bound (request/reply round-trips
        # gate every reconfiguration stage): never wait for Nagle.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.send_event(["hello", self.machine_name, profile_to_abstract(self.profile)])
        try:
            while True:
                frame = recv_frame(self._sock)
                if not isinstance(frame, list) or len(frame) < 3:
                    raise TransportError(f"malformed frame {frame!r}")
                kind, seq, command = frame[0], frame[1], frame[2]
                args = frame[3:]
                if kind == "evt":
                    # Fire-and-forget events (message delivery): no reply,
                    # so the bus can route from its reader threads without
                    # deadlocking on its own request path.
                    try:
                        self._handle(str(command), args)
                    except Exception:  # noqa: BLE001 - drop bad event
                        pass
                    continue
                if kind != "req":
                    continue
                if command == "shutdown":
                    self._reply(int(seq), True)
                    return
                # Handle each request on its own thread: wait_divulged can
                # take seconds, during which message deliveries and other
                # commands must keep flowing.
                threading.Thread(
                    target=self._handle_request,
                    args=(int(seq), str(command), args),
                    daemon=True,
                ).start()
        except TransportError:
            pass  # bus went away; daemon exits
        finally:
            self.core.stop_all()
            if self._sock is not None:
                self._sock.close()

    # -- command handlers -------------------------------------------------------------

    def _handle_request(self, seq: int, command: str, args: List[object]) -> None:
        try:
            result = self._handle(command, args)
        except Exception as exc:  # noqa: BLE001 - ship error to bus
            self._reply_error(seq, f"{type(exc).__name__}: {exc}")
        else:
            self._reply(seq, result)

    def _handle(self, command: str, args: List[object]) -> object:
        return self.core.handle(command, list(args))


def daemon_entry(
    machine_name: str,
    profile_raw: dict,
    bus_host: str,
    bus_port: int,
    sleep_scale: float,
) -> None:
    """Entry point for the daemon process."""
    MachineDaemon(
        machine_name,
        profile_from_abstract(profile_raw),
        (bus_host, bus_port),
        sleep_scale=sleep_scale,
    ).run()


def _daemon_argv(
    machine_name: str,
    profile: MachineProfile,
    address: Tuple[str, int],
    sleep_scale: float,
) -> List[str]:
    """Command line for ``python -m repro.bus.tcp`` daemon processes."""
    return [
        sys.executable,
        "-m",
        "repro.bus.tcp",
        machine_name,
        profile.endianness.value,
        str(profile.int_bits),
        str(profile.long_bits),
        str(profile.float_bits),
        address[0],
        str(address[1]),
        str(sleep_scale),
    ]


# ---------------------------------------------------------------------------
# Central distributed bus
# ---------------------------------------------------------------------------


@dataclass
class _RemoteInstance:
    instance: str
    spec: ModuleSpec  # unprepared spec (bus-side view)
    machine: str
    prepared_source: str


class _Waiter:
    """One pending request awaiting its reply frame."""

    __slots__ = ("event", "kind", "value")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.kind = ""
        self.value: object = None

    def complete(self, kind: str, value: object) -> None:
        self.kind = kind
        self.value = value
        self.event.set()


class _DaemonLink:
    """Bus-side connection to one machine daemon."""

    def __init__(
        self,
        name: str,
        profile: MachineProfile,
        sock: socket.socket,
        bus,
        retry: Optional[RetryPolicy] = None,
    ):
        self.name = name
        self.profile = profile
        self.sock = sock
        self.bus = bus
        self.retry = retry or RetryPolicy(attempts=3, backoff=0.05)
        self._seq = 0
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._pending: Dict[int, _Waiter] = {}
        self._reader = threading.Thread(
            target=self._read_loop, name=f"daemon-link-{name}", daemon=True
        )
        self._reader.start()

    def _read_loop(self) -> None:
        try:
            while True:
                try:
                    frame = recv_frame(self.sock)
                except InjectedFault:
                    continue  # injected receive fault: frame lost; requests retry
                kind = frame[0]  # type: ignore[index]
                if kind in ("rep", "err"):
                    seq = int(frame[1])  # type: ignore[index,arg-type]
                    with self._lock:
                        waiter = self._pending.pop(seq, None)
                    if waiter is not None:
                        waiter.complete(str(kind), frame[2])  # type: ignore[index]
                elif kind == "evt":
                    command = frame[2]  # type: ignore[index]
                    if command == "write_batch":
                        # Coalesced daemon writes: one frame, many wires.
                        wires, entries = unpack_batch(bytes(frame[3]))  # type: ignore[index,arg-type]
                        for instance, interface, dest, widx in entries:
                            if dest:
                                self.bus._on_remote_write_to(
                                    instance, interface, dest, wires[widx]
                                )
                            else:
                                self.bus._on_remote_write(
                                    instance, interface, wires[widx]
                                )
                    elif command == "write":
                        _, _, _, instance, interface, wire = frame  # type: ignore[misc]
                        self.bus._on_remote_write(
                            str(instance), str(interface), bytes(wire)
                        )
                    elif command == "write_to":
                        _, _, _, instance, interface, dest, wire = frame  # type: ignore[misc]
                        self.bus._on_remote_write_to(
                            str(instance), str(interface), str(dest), bytes(wire)
                        )
        except (TransportError, OSError):
            return

    def send_event(self, command: List[object]) -> None:
        """Fire-and-forget frame (used for message delivery)."""
        try:
            with self._send_lock:
                send_frame(self.sock, ["evt", 0] + command)
        except InjectedFault:
            pass  # injected fault on a fire-and-forget send == frame lost

    def request(self, command: List[object], timeout: float = 30.0) -> object:
        """Round-trip a request frame, retrying lost frames with backoff.

        Each attempt gets a fresh sequence number and the full
        ``timeout``; a reply that never arrives (dropped request or
        dropped reply frame) is retried up to the policy's budget.  The
        daemon executes every request frame it receives, so a retry
        whose *reply* was lost re-executes the command — callers on the
        retry path must be idempotent or tolerate an "already present"
        error reply.  ``err`` replies are never retried (the daemon ran
        the command and it failed).
        """
        delays = self.retry.delays()
        failure: Optional[Exception] = None
        for attempt in range(self.retry.attempts):
            waiter = _Waiter()
            with self._lock:
                self._seq += 1
                seq = self._seq
                self._pending[seq] = waiter
            try:
                with self._send_lock:
                    send_frame(self.sock, ["req", seq] + command)
            except InjectedFault as exc:
                with self._lock:
                    self._pending.pop(seq, None)
                failure = exc
            else:
                if waiter.event.wait(timeout):
                    if waiter.kind == "err":
                        message = str(waiter.value)
                        if "ReconfigTimeoutError" in message:
                            raise ReconfigTimeoutError(message)
                        raise BusError(f"daemon {self.name}: {message}")
                    return waiter.value
                with self._lock:
                    self._pending.pop(seq, None)
                failure = TransportError(
                    f"daemon {self.name}: no reply to {command[0]!r} "
                    f"in {timeout}s"
                )
            if attempt < len(delays):
                time.sleep(delays[attempt])
        assert failure is not None
        raise failure

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class DistributedBus:
    """The central bus process of a TCP-distributed application.

    Modules run inside machine daemons (real OS processes); this object
    holds the binding table, routes canonical message bytes between
    daemons, and executes move/replace reconfigurations whose state
    packets genuinely cross the network.
    """

    def __init__(self, sleep_scale: float = 0.0):
        self.sleep_scale = sleep_scale
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._links: Dict[str, _DaemonLink] = {}
        self._processes: List[subprocess.Popen] = []
        self._instances: Dict[str, _RemoteInstance] = {}
        self._bindings: List[BindingSpec] = []
        self._lock = threading.RLock()
        self.trace: List[str] = []

    # -- machines ---------------------------------------------------------------

    def spawn_machine(self, name: str, architecture: str = "modern-64") -> None:
        """Launch a machine daemon process and wait for its hello."""
        base = MACHINES[architecture]
        profile = MachineProfile(
            name=name,
            endianness=base.endianness,
            int_bits=base.int_bits,
            long_bits=base.long_bits,
            float_bits=base.float_bits,
        )
        process = subprocess.Popen(
            _daemon_argv(name, profile, self.address, self.sleep_scale)
        )
        self._processes.append(process)
        self._listener.settimeout(30)
        sock, _addr = self._listener.accept()
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello = recv_frame(sock)
        if not (isinstance(hello, list) and hello[2] == "hello"):
            raise TransportError(f"unexpected first frame {hello!r}")
        daemon_name = str(hello[3])
        daemon_profile = profile_from_abstract(dict(hello[4]))
        link = _DaemonLink(daemon_name, daemon_profile, sock, self)
        self._links[daemon_name] = link
        self.trace.append(f"machine {daemon_name} up ({daemon_profile.describe()})")

    def _link(self, machine: str) -> _DaemonLink:
        try:
            return self._links[machine]
        except KeyError:
            raise BusError(f"no machine daemon named {machine!r}") from None

    # -- application --------------------------------------------------------------

    def launch(self, config: Configuration, placement: Dict[str, str]) -> None:
        """Place and start every instance of a parsed MIL application."""
        config.validate()
        if config.application is None:
            raise BusError("configuration has no application specification")
        for inst in config.application.instances:
            machine = placement.get(inst.instance) or inst.machine
            if not machine:
                raise BusError(f"no placement for instance {inst.instance!r}")
            self.add_module(config.modules[inst.module], inst.instance, machine)
        for binding in config.application.bindings:
            self.add_binding(binding)
        for inst in config.application.instances:
            self.start_module(inst.instance)

    def add_module(
        self,
        spec: ModuleSpec,
        instance: str,
        machine: str,
        status: str = "original",
        state_packet: Optional[bytes] = None,
    ) -> None:
        with self._lock:
            if instance in self._instances:
                raise BusError(f"instance {instance!r} already exists")
            source = spec.inline_source
            if not source:
                with open(spec.source, "r", encoding="utf-8") as handle:
                    source = handle.read()
            if spec.is_reconfigurable:
                prepared = prepare_module(
                    source,
                    module_name=spec.name,
                    declared_points=list(spec.reconfig_points),
                ).source
            else:
                prepared = source
            self._link(machine).request(
                [
                    "add",
                    instance,
                    spec_to_abstract(spec, prepared),
                    status,
                    state_packet,
                ]
            )
            self._instances[instance] = _RemoteInstance(
                instance=instance,
                spec=spec,
                machine=machine,
                prepared_source=prepared,
            )
        self.trace.append(f"add {instance} on {machine} (status={status})")

    def start_module(self, instance: str) -> None:
        remote = self._instance(instance)
        self._link(remote.machine).request(["start", instance])

    def remove_module(self, instance: str) -> None:
        with self._lock:
            remote = self._instance(instance)
            self._link(remote.machine).request(["remove", instance])
            del self._instances[instance]

    def _instance(self, instance: str) -> _RemoteInstance:
        with self._lock:
            try:
                return self._instances[instance]
            except KeyError:
                raise UnknownModuleError(f"no instance {instance!r}") from None

    # -- bindings -------------------------------------------------------------------

    def add_binding(self, binding: BindingSpec) -> None:
        with self._lock:
            self._bindings.append(binding)

    def remove_binding(self, binding: BindingSpec) -> None:
        with self._lock:
            self._bindings.remove(binding)

    # -- routing --------------------------------------------------------------------

    def _on_remote_write(self, instance: str, interface: str, wire: bytes) -> None:
        """A daemon reported a module write; fan out to bound peers.

        Peer resolution AND the sends happen under the bus lock: a move
        switches an instance's machine under the same lock, so every
        delivery is either fully routed to the old daemon (and then
        drained) or fully routed to the new one — never dropped between.
        Per-link TCP FIFO then guarantees drains see all prior deliveries.
        """
        with self._lock:
            for binding in self._bindings:
                (a_inst, a_if), (b_inst, b_if) = binding.endpoints()
                if (a_inst, a_if) == (instance, interface):
                    peer, peer_if = b_inst, b_if
                elif (b_inst, b_if) == (instance, interface):
                    peer, peer_if = a_inst, a_if
                else:
                    continue
                remote = self._instances.get(peer)
                if remote is None:
                    continue
                decl = remote.spec.interface(peer_if)
                if decl.direction.can_receive:
                    self._link(remote.machine).send_event(
                        ["deliver", peer, peer_if, wire]
                    )

    def _on_remote_write_to(
        self, instance: str, interface: str, destination: str, wire: bytes
    ) -> None:
        """Directed delivery across daemons (server replies)."""
        with self._lock:
            for binding in self._bindings:
                (a_inst, a_if), (b_inst, b_if) = binding.endpoints()
                if (a_inst, a_if) == (instance, interface) and b_inst == destination:
                    peer, peer_if = b_inst, b_if
                elif (b_inst, b_if) == (instance, interface) and a_inst == destination:
                    peer, peer_if = a_inst, a_if
                else:
                    continue
                remote = self._instances.get(peer)
                if remote is None:
                    continue
                if remote.spec.interface(peer_if).direction.can_receive:
                    self._link(remote.machine).send_event(
                        ["deliver", peer, peer_if, wire]
                    )
                    return
        self.trace.append(
            f"dropped directed send {instance}.{interface} -> {destination}"
        )

    # -- introspection ----------------------------------------------------------------

    def statics_of(self, instance: str) -> Dict[str, object]:
        remote = self._instance(instance)
        return dict(self._link(remote.machine).request(["statics", instance]))  # type: ignore[arg-type]

    def state_of(self, instance: str) -> str:
        remote = self._instance(instance)
        return str(self._link(remote.machine).request(["state", instance]))

    def machine_of(self, instance: str) -> str:
        return self._instance(instance).machine

    def snapshot_configuration(self) -> Dict[str, object]:
        """Current distributed topology: placements plus bindings."""
        with self._lock:
            return {
                "instances": {
                    name: remote.machine
                    for name, remote in sorted(self._instances.items())
                },
                "bindings": [b.describe() for b in self._bindings],
                "machines": sorted(self._links),
            }

    # -- reconfiguration ---------------------------------------------------------------

    def move_module(
        self, instance: str, machine: str, timeout: float = 15.0
    ) -> Dict[str, object]:
        """Move a module between daemon processes, state over the wire."""
        return self.replace_module(instance, machine=machine, timeout=timeout)

    def upgrade_module(
        self,
        instance: str,
        new_source: str,
        machine: Optional[str] = None,
        timeout: float = 15.0,
    ) -> Dict[str, object]:
        """Replace a module with a new version across daemon processes."""
        return self.replace_module(
            instance, machine=machine, new_source=new_source, timeout=timeout
        )

    def replace_module(
        self,
        instance: str,
        machine: Optional[str] = None,
        new_source: Optional[str] = None,
        timeout: float = 15.0,
    ) -> Dict[str, object]:
        """The general distributed replacement (move and/or upgrade)."""
        remote = self._instance(instance)
        old_machine = remote.machine
        machine = machine or old_machine
        old_link = self._link(old_machine)
        new_link = self._link(machine)
        if new_source is not None:
            remote.prepared_source = prepare_module(
                new_source,
                module_name=remote.spec.name,
                declared_points=list(remote.spec.reconfig_points),
            ).source
        started = time.monotonic()

        old_link.request(["signal", instance])
        packet = bytes(
            old_link.request(["wait_divulged", instance, timeout], timeout=timeout + 5)  # type: ignore[arg-type]
        )
        divulged = time.monotonic()

        spec = remote.spec.with_attributes(machine=machine, status="clone")

        if machine == old_machine:
            # Same-daemon replacement: add the clone under a temporary
            # key, then atomically swap it in (queues move with it).
            temp = f"{instance}.tmp"
            new_link.request(
                [
                    "add",
                    temp,
                    spec_to_abstract(spec, remote.prepared_source),
                    "clone",
                    packet,
                ]
            )
            new_link.request(["swap", instance, temp])
            new_link.request(["start", instance])
            done = time.monotonic()
            result = {
                "instance": instance,
                "from": old_machine,
                "to": machine,
                "packet_bytes": len(packet),
                "delay_to_point_s": divulged - started,
                "total_s": done - started,
            }
            self.trace.append(str(result))
            return result

        # The instance keeps its name throughout: instances are keyed
        # per-daemon, so "compute" can exist on both machines while the
        # handover is in flight — bindings never change, only placement.
        new_link.request(
            [
                "add",
                instance,
                spec_to_abstract(spec, remote.prepared_source),
                "clone",
                packet,
            ]
        )

        # Atomic placement switch: from here on, routing targets the new
        # daemon.  (Routing sends hold the same lock, so nothing lands
        # "between" machines.)
        with self._lock:
            remote.machine = machine

        # Older messages still queued at the old daemon move to the front
        # of the clone's queues; per-link FIFO ensures this drain sees
        # everything routed before the switch.
        queued = old_link.request(["drain_queues", instance])
        for interface, wires in dict(queued).items():  # type: ignore[union-attr]
            if wires:
                new_link.request(
                    ["deliver_front", instance, interface, [bytes(w) for w in wires]]
                )

        new_link.request(["start", instance])
        old_link.request(["remove", instance])
        done = time.monotonic()
        report = {
            "instance": instance,
            "from": old_machine,
            "to": machine,
            "packet_bytes": len(packet),
            "delay_to_point_s": divulged - started,
            "total_s": done - started,
        }
        self.trace.append(str(report))
        return report

    # -- shutdown ----------------------------------------------------------------------

    def shutdown(self) -> None:
        for link in self._links.values():
            try:
                link.request(["shutdown"], timeout=5)
            except (BusError, TransportError):
                pass
            link.close()
        for process in self._processes:
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                process.terminate()
                process.wait(timeout=5)
        self._listener.close()


if __name__ == "__main__":
    # Daemon process entry: python -m repro.bus.tcp NAME ENDIAN I L F HOST PORT SCALE
    _name, _endian, _i, _l, _f, _host, _port, _scale = sys.argv[1:9]
    daemon_entry(
        _name,
        {
            "name": _name,
            "endianness": _endian,
            "int_bits": int(_i),
            "long_bits": int(_l),
            "float_bits": int(_f),
        },
        _host,
        int(_port),
        float(_scale),
    )
