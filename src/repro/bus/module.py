"""Module instances: a namespace, a thread of control, and a bus port.

"A module is a software process with its own memory and its own thread
of control."  Here each instance executes in its own Python namespace
(its memory) on its own thread.  The instance's :class:`ModulePort`
bridges the module's ``mh.read``/``mh.write``/``mh.query_ifmsgs`` calls
to the bus, and its per-interface :class:`MessageQueue`\\ s hold
asynchronously delivered messages.

A reconfigurable module (its spec declares reconfiguration points) is
passed through :func:`repro.core.prepare_module` at load time — the
paper prepares modules "when the original program is compiled", i.e.
ahead of any reconfiguration request.
"""

from __future__ import annotations

import enum
import threading
import traceback
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

from repro.bus.machine import Host
from repro.bus.message import Message
from repro.bus.queues import MessageQueue
from repro.bus.spec import ModuleSpec
from repro.core.transformer import TransformResult, prepare_module
from repro.errors import (
    ModuleCrashedError,
    ModuleLifecycleError,
    TransportError,
    UnknownInterfaceError,
)
from repro.runtime import faults, telemetry
from repro.runtime.mh import MH, ModuleStop, SleepPolicy
from repro.runtime.refs import Ref


class ModuleState(enum.Enum):
    CREATED = "created"
    LOADED = "loaded"
    RUNNING = "running"
    DIVULGED = "divulged"  # main returned after a state capture
    STOPPED = "stopped"
    CRASHED = "crashed"
    REMOVED = "removed"


class ModulePort:
    """The side of the bus a module's MH runtime talks to."""

    def __init__(self, instance: "ModuleInstance"):
        self.instance = instance

    def write(self, interface: str, fmt: str, values: List[object]) -> None:
        decl = self.instance.spec.interface(interface)
        if not decl.direction.can_send:
            raise UnknownInterfaceError(
                f"{self.instance.name}: interface {interface!r} "
                f"({decl.role.value}) cannot send"
            )
        message = Message(
            values=list(values),
            fmt=fmt or decl.send_fmt(),
            source_instance=self.instance.name,
            source_interface=interface,
        ).validated()
        self.instance.bus.route(self.instance.name, interface, message)

    def write_to(
        self, interface: str, destination: str, fmt: str, values: List[object]
    ) -> None:
        """Directed delivery to one bound peer (server replies)."""
        decl = self.instance.spec.interface(interface)
        if not decl.direction.can_send:
            raise UnknownInterfaceError(
                f"{self.instance.name}: interface {interface!r} "
                f"({decl.role.value}) cannot send"
            )
        message = Message(
            values=list(values),
            fmt=fmt or decl.send_fmt(),
            source_instance=self.instance.name,
            source_interface=interface,
        ).validated()
        self.instance.bus.route_to(
            self.instance.name, interface, destination, message
        )

    def read(
        self,
        interface: str,
        timeout: Optional[float],
        stop_event: threading.Event,
    ) -> List[object]:
        message = self.instance.queue(interface).get(timeout, stop_event)
        return list(message.values)

    def read_msg(
        self,
        interface: str,
        timeout: Optional[float],
        stop_event: threading.Event,
    ):
        message = self.instance.queue(interface).get(timeout, stop_event)
        return list(message.values), message.source_instance

    def query_ifmsgs(self, interface: str) -> bool:
        return self.instance.queue(interface).peek_count() > 0


@lru_cache(maxsize=128)
def _prepare_module_cached(
    source: str,
    module_name: str,
    declared_points: Tuple[str, ...],
    prune_dead_captures: bool,
) -> TransformResult:
    """Memoized :func:`prepare_module` keyed by everything that shapes it.

    The transformation is deterministic in these four inputs and its
    result is never mutated after construction, so instances of the same
    module share one :class:`TransformResult`.  The payoff is on the
    reconfiguration critical path: a replacement clone is prepared from
    the exact source/points/pruning of the original, so its whole AST
    pipeline collapses to a cache hit.  Transform *errors* are not
    cached (``lru_cache`` re-raises by re-running), so a rejected new
    version stays rejected with a fresh traceback every time.
    """
    return prepare_module(
        source,
        module_name=module_name,
        declared_points=list(declared_points),
        prune_dead_captures=prune_dead_captures,
    )


def resolve_source(spec: ModuleSpec) -> str:
    """The module's raw source text (inline takes precedence over path)."""
    source = spec.inline_source
    if not source:
        if not spec.source:
            raise ModuleLifecycleError(
                f"{spec.name}: module spec has neither inline source nor "
                f"a source path"
            )
        with open(spec.source, "r", encoding="utf-8") as handle:
            source = handle.read()
    return source


def prepared_source_for(spec: ModuleSpec) -> str:
    """Executable (transformed if reconfigurable) source for ``spec``.

    The bus-side half of remote placement: a module hosted in a worker
    process or machine daemon is prepared *here*, ahead of shipping, so
    remote hosts never run the transformer (the paper prepares modules
    "when the original program is compiled").  Shares the memoized
    transform cache with :meth:`ModuleInstance.load`, so placing the
    same module both inproc and in a worker costs one transformation.
    """
    source = resolve_source(spec)
    if spec.is_reconfigurable:
        prune = spec.attributes.get("prune_dead_captures", "").lower() in (
            "true",
            "yes",
            "1",
        )
        return _prepare_module_cached(
            source, spec.name, tuple(spec.reconfig_points), prune
        ).source
    return source


class ModuleInstance:
    """One executing (or executable) module on a host."""

    def __init__(
        self,
        name: str,
        spec: ModuleSpec,
        host: Host,
        bus,
        status: str = "original",
        sleep_policy: Optional[SleepPolicy] = None,
    ):
        self.name = name
        self.spec = spec
        self.host = host
        self.bus = bus
        self.state = ModuleState.CREATED
        self.mh = MH(
            module=spec.name,
            machine=host.profile,
            status=status,
            sleep_policy=sleep_policy,
        )
        self.mh.attach_port(ModulePort(self))
        self.mh.config.update(spec.attributes)
        self.transform: Optional[TransformResult] = None
        self.namespace: Dict[str, object] = {}
        self.thread: Optional[threading.Thread] = None
        self.crash: Optional[BaseException] = None
        # Called (with this instance) whenever the run loop reaches a
        # terminal state; remote hosts hook it to push lifecycle events
        # back to the bus process so crash detection works across the
        # process boundary without polling.
        self.lifecycle_hook: Optional[Callable[["ModuleInstance"], None]] = None
        self._queues: Dict[str, MessageQueue] = {}
        for decl in spec.interfaces:
            if decl.direction.can_receive:
                self._queues[decl.name] = MessageQueue(f"{name}.{decl.name}")

    # -- queues --------------------------------------------------------------

    def queue(self, interface: str) -> MessageQueue:
        try:
            return self._queues[interface]
        except KeyError:
            decl = self.spec.interface(interface)  # raises if undeclared
            raise UnknownInterfaceError(
                f"{self.name}: interface {interface!r} ({decl.role.value}) "
                f"has no receive queue"
            ) from None

    def has_queue(self, interface: str) -> bool:
        return interface in self._queues

    def deliver(self, interface: str, message: Message) -> None:
        self.queue(interface).put(message)

    def queued_counts(self) -> Dict[str, int]:
        return {name: q.peek_count() for name, q in self._queues.items()}

    # -- lifecycle -----------------------------------------------------------

    def load(self) -> None:
        """Resolve the source and (if reconfigurable) prepare it.

        The transformation runs once per instance creation — i.e. ahead
        of time, never at reconfiguration time.
        """
        if self.state not in (ModuleState.CREATED,):
            raise ModuleLifecycleError(f"{self.name}: cannot load in {self.state}")
        faults.fire_hard("module.load")
        with telemetry.span(
            "module.load", instance=self.name, module=self.spec.name
        ):
            source = resolve_source(self.spec)
            if self.spec.is_reconfigurable:
                prune = self.spec.attributes.get(
                    "prune_dead_captures", ""
                ).lower() in (
                    "true",
                    "yes",
                    "1",
                )
                self.transform = _prepare_module_cached(
                    source,
                    self.spec.name,
                    tuple(self.spec.reconfig_points),
                    prune,
                )
                source = self.transform.source
            self.executable_source = source
        self.state = ModuleState.LOADED

    def start(self) -> None:
        """Spawn the module's thread of control running ``main()``."""
        if self.state is ModuleState.CREATED:
            self.load()
        if self.state is not ModuleState.LOADED:
            raise ModuleLifecycleError(f"{self.name}: cannot start in {self.state}")
        self.namespace = {"mh": self.mh, "Ref": Ref, "__name__": self.spec.name}
        code = compile(self.executable_source, f"<module {self.name}>", "exec")
        exec(code, self.namespace)
        main = self.namespace.get("main")
        if not callable(main):
            raise ModuleLifecycleError(
                f"{self.name}: module source defines no main() procedure"
            )
        self.state = ModuleState.RUNNING
        self.thread = threading.Thread(
            target=self._run, name=f"module-{self.name}", daemon=True
        )
        self.thread.start()

    def _run(self) -> None:
        try:
            while True:
                try:
                    self.namespace["main"]()
                except ModuleStop:
                    self.state = ModuleState.STOPPED
                    return
                except TransportError:
                    # A read interrupted by stop surfaces as TransportError when
                    # the module swallowed ModuleStop; treat as a clean stop.
                    if not self.mh.running:
                        self.state = ModuleState.STOPPED
                        return
                    self.crash = TransportError(traceback.format_exc())
                    self.state = ModuleState.CRASHED
                    telemetry.event(
                        "module.crash", instance=self.name, cause="TransportError"
                    )
                    return
                except BaseException as exc:  # noqa: BLE001 - report, don't die silently
                    self.crash = exc
                    self.state = ModuleState.CRASHED
                    telemetry.event(
                        "module.crash", instance=self.name, cause=type(exc).__name__
                    )
                    return
                # A withdrawn reconfiguration can race the capture: the module
                # divulges (or suppresses) after the coordinator cancelled the
                # move.  Nobody will consume the packet, so resume from it —
                # the module restores in place and keeps serving.
                abandoned = self.mh.reclaim_abandoned_divulge()
                if abandoned is not None:
                    self.mh.prepare_revival(abandoned)
                    continue
                if self.mh.divulged.is_set():
                    self.state = ModuleState.DIVULGED
                else:
                    self.state = ModuleState.STOPPED
                return
        finally:
            hook = self.lifecycle_hook
            if hook is not None:
                try:
                    hook(self)
                except Exception:  # noqa: BLE001 - hooks must not kill the thread
                    pass

    def stop(self, timeout: float = 5.0) -> None:
        """Ask the thread of control to exit and wait for it."""
        self.mh.stop()
        self.join(timeout)
        if self.state is ModuleState.RUNNING:
            self.state = ModuleState.STOPPED

    def join(self, timeout: float = 5.0) -> None:
        if self.thread is not None:
            self.thread.join(timeout)

    def revive(self, packet: Optional[bytes] = None, timeout: float = 5.0) -> None:
        """Resume a divulged/stopped module from a captured state packet.

        The rollback half of an aborted replacement: the old module's
        thread has exited (its state went out with the divulge), but its
        queues and bindings are untouched, so restarting it as a clone
        of *itself* — same namespace, fresh thread, state restored from
        its own packet — puts the application back exactly where the
        capture left it.
        """
        pkt = packet if packet is not None else self.mh.outgoing_packet
        if pkt is None:
            raise ModuleLifecycleError(
                f"{self.name}: no captured state to revive from"
            )
        if self.thread is not None and self.thread.is_alive():
            if self.state is ModuleState.RUNNING:
                return  # already self-revived on its own thread
            self.thread.join(timeout)
            if self.thread.is_alive():
                raise ModuleLifecycleError(
                    f"{self.name}: cannot revive while its thread is alive"
                )
        if not self.namespace.get("main"):
            raise ModuleLifecycleError(f"{self.name}: never started; cannot revive")
        self.mh.prepare_revival(pkt)
        self.crash = None
        self.state = ModuleState.RUNNING
        telemetry.event("module.revive", instance=self.name, bytes=len(pkt))
        self.thread = threading.Thread(
            target=self._run, name=f"module-{self.name}", daemon=True
        )
        self.thread.start()

    def rename(self, new_name: str) -> None:
        """Adopt a new instance name, rebranding the per-interface queues."""
        self.name = new_name
        for ifname, queue in self._queues.items():
            queue.rename(f"{new_name}.{ifname}")

    def check_alive(self) -> None:
        """Raise the module's crash, if it crashed."""
        if self.state is ModuleState.CRASHED and self.crash is not None:
            raise ModuleCrashedError(self.name, self.crash)

    def wait_divulged(self, timeout: float) -> bytes:
        """Block until the module has captured and divulged its state."""
        if not self.mh.divulged.wait(timeout):
            self.check_alive()
            from repro.errors import ReconfigTimeoutError

            raise ReconfigTimeoutError(
                f"{self.name}: no reconfiguration point reached within "
                f"{timeout}s"
            )
        self.join(timeout)
        packet = self.mh.outgoing_packet
        if packet is None:  # pragma: no cover - divulged implies packet
            raise ModuleLifecycleError(f"{self.name}: divulged without packet")
        return packet

    def describe(self) -> str:
        return (
            f"{self.name} [{self.spec.name}] on {self.host.name} "
            f"({self.state.value})"
        )
