"""Process worker pool: modules in long-lived worker processes.

The GIL caps a single bus process at roughly one core of module work no
matter how many module threads it hosts.  :class:`ProcessTransport`
breaks that ceiling with a pool of long-lived worker processes fed over
``multiprocessing`` pipes: each worker runs a
:class:`~repro.bus.transport.ModuleHost` serving the same frame protocol
as the TCP machine daemons, with the canonical self-described encoding
(:func:`~repro.state.encoding.encode_any` — the PR 2 compiled codecs) as
the wire format.  No sockets, no framing headers: a frame is one
``send_bytes`` on the pipe.

Deliveries are *coalesced*: a busy link ships ``deliver_batch`` frames
carrying many already-encoded message wires per ``send_bytes`` (see
:mod:`repro.bus.batch`), and the worker dispatches the whole batch
inline in the serve loop — one frame decode, one modules-lock acquire —
so per-message pipe overhead is amortized away.  Events stay inline
precisely because of that: per-link FIFO is what makes queue snapshots
exact w.r.t. prior deliveries, batched or not.

Placement is ``placement="worker"`` (round-robin over the pool) or
``placement="worker:<index>"`` (pinned to one slot).  Workers spawn
lazily on first placement, so buses that never leave the process pay
nothing.  The pool uses the ``spawn`` start method by default — the bus
process is full of threads holding locks, which ``fork`` would duplicate
mid-flight; override with ``start_method=`` or ``REPRO_WORKER_START``
where fork semantics are wanted deliberately.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from typing import Dict, List, Optional, Tuple

from repro.bus.machine import Host
from repro.bus.transport import Link, ModuleHost, RemoteTransport
from repro.errors import BusError, TransportError
from repro.runtime.faults import FaultPlan
from repro.runtime.mh import SleepPolicy
from repro.state.encoding import decode_any, encode_any
from repro.state.machine import MACHINES, MachineProfile, profile_from_abstract


class PipeChannel:
    """A ``multiprocessing`` pipe as a frame channel.

    Pipes are loss-free and ordered, so links over them run without a
    retry policy; a failed pipe operation means the peer process died,
    which surfaces as :class:`TransportError`.
    """

    __slots__ = ("_conn",)

    def __init__(self, conn):
        self._conn = conn

    def send(self, value) -> None:
        try:
            self._conn.send_bytes(encode_any(value))
        except (OSError, ValueError, EOFError) as exc:
            raise TransportError(f"pipe send failed: {exc}") from exc

    def recv(self):
        try:
            data = self._conn.recv_bytes()
        except (OSError, EOFError) as exc:
            raise TransportError(f"pipe closed: {exc}") from exc
        return decode_any(data)

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


def _send(channel: PipeChannel, send_lock: threading.Lock, frame: List[object]) -> None:
    try:
        with send_lock:
            channel.send(frame)
    except TransportError:
        pass  # bus side went away; the serve loop will notice on recv


def _serve(
    core: ModuleHost,
    channel: PipeChannel,
    send_lock: threading.Lock,
    seq: int,
    command: str,
    args: List[object],
) -> None:
    """Execute one request on its own thread and ship the reply.

    Requests run off the serve loop because several of them block on
    module progress (``wait_divulged``, ``stop``) while events — message
    deliveries — must keep flowing.
    """
    try:
        result = core.handle(command, args)
        reply: List[object] = ["rep", seq, result]
    except Exception as exc:  # noqa: BLE001 - every failure becomes an err reply
        reply = ["err", seq, f"{type(exc).__name__}: {exc}"]
    _send(channel, send_lock, reply)


def worker_main(conn, name: str, profile_raw: Dict[str, object], sleep_scale: float) -> None:
    """Entry point of one worker process (must stay module-level: spawn
    pickles it by qualified name)."""
    channel = PipeChannel(conn)
    send_lock = threading.Lock()

    def send_event(command: List[object]) -> None:
        _send(channel, send_lock, ["evt", 0] + list(command))

    host = Host(name=name, profile=profile_from_abstract(profile_raw))
    core = ModuleHost(
        name, host, SleepPolicy(scale=float(sleep_scale)), send_event
    )
    try:
        while True:
            try:
                frame = channel.recv()
            except TransportError:
                break  # bus process closed the pipe
            kind = str(frame[0])
            if kind == "evt":
                # Events are handled inline: per-link FIFO is what makes
                # queue snapshots exact w.r.t. prior deliveries.
                try:
                    core.handle(str(frame[2]), list(frame[3:]))
                except Exception:  # noqa: BLE001 - a bad event must not kill the worker
                    pass
            elif kind == "req":
                seq = int(frame[1])
                command = str(frame[2])
                if command == "shutdown":
                    _send(channel, send_lock, ["rep", seq, True])
                    break
                threading.Thread(
                    target=_serve,
                    args=(core, channel, send_lock, seq, command, list(frame[3:])),
                    name=f"serve-{command}",
                    daemon=True,
                ).start()
    finally:
        core.stop_all()


class _WorkerSlot:
    __slots__ = ("name", "link", "host", "process")

    def __init__(self, name: str, link: Link, host: Host, process):
        self.name = name
        self.link = link
        self.host = host
        self.process = process


class ProcessTransport(RemoteTransport):
    """A fixed-size pool of worker processes as a bus transport."""

    name = "worker"

    def __init__(
        self,
        workers: int = 2,
        architecture: str = "modern-64",
        sleep_scale: float = 0.0,
        start_method: Optional[str] = None,
        host_prefix: str = "worker-",
    ):
        super().__init__()
        if workers < 1:
            raise BusError("worker pool needs at least one slot")
        method = start_method or os.environ.get("REPRO_WORKER_START", "spawn")
        self._ctx = multiprocessing.get_context(method)
        self._architecture = architecture
        self._sleep_scale = sleep_scale
        self._host_prefix = host_prefix
        self._slots: List[Optional[_WorkerSlot]] = [None] * workers
        self._slots_lock = threading.Lock()
        self._rr = 0

    @property
    def workers(self) -> int:
        return len(self._slots)

    def links(self) -> List[Link]:
        with self._slots_lock:
            return [slot.link for slot in self._slots if slot is not None]

    # -- pool management -------------------------------------------------------

    def _ensure_slot(self, index: int) -> _WorkerSlot:
        with self._slots_lock:
            slot = self._slots[index]
            if slot is not None:
                return slot
            name = f"{self._host_prefix}{index}"
            base = MACHINES[self._architecture]
            profile = MachineProfile(
                name=name,
                endianness=base.endianness,
                int_bits=base.int_bits,
                long_bits=base.long_bits,
                float_bits=base.float_bits,
            )
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=worker_main,
                args=(child_conn, name, profile.to_abstract(), self._sleep_scale),
                name=f"repro-{name}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            link = Link(name, profile, PipeChannel(parent_conn))
            link.on_event = self._make_on_event(link)
            # Spawn handshake: the first reply proves the interpreter is
            # up and the repro imports completed (slow on cold caches).
            link.request(["ping"], timeout=60.0)
            # A slot spawned after enable_health must start beating too.
            self._sync_health(link)
            slot = _WorkerSlot(
                name=name,
                link=link,
                host=Host(name=name, profile=profile),
                process=process,
            )
            self._slots[index] = slot
            return slot

    def peek_host(self, slot: Optional[str]) -> Optional[str]:
        """Resolve a slot to its host name with no side effects.

        Unlike :meth:`_place` this neither spawns the worker nor
        advances round-robin — the coordinator's health pre-flight must
        be able to ask "who would this placement target" without
        perturbing placement itself.
        """
        if not slot:
            return None
        try:
            index = int(slot)
        except ValueError:
            return None
        if not 0 <= index < len(self._slots):
            return None
        return f"{self._host_prefix}{index}"

    def _place(self, slot: Optional[str]) -> Tuple[Link, Host, str]:
        if not slot:
            with self._slots_lock:
                index = self._rr % len(self._slots)
                self._rr += 1
        else:
            try:
                index = int(slot)
            except ValueError:
                raise BusError(
                    f"worker placement slot must be an index, got {slot!r}"
                ) from None
            if not 0 <= index < len(self._slots):
                raise BusError(
                    f"worker slot {index} out of range "
                    f"(pool has {len(self._slots)})"
                )
        worker = self._ensure_slot(index)
        return worker.link, worker.host, f"{self.name}:{index}"

    # -- chaos / telemetry parity ----------------------------------------------

    def _live_slots(self) -> List[_WorkerSlot]:
        with self._slots_lock:
            return [slot for slot in self._slots if slot is not None]

    def install_fault_plan(self, plan: FaultPlan) -> None:
        """Arm the same schedule in every live worker (fresh firing state)."""
        for slot in self._live_slots():
            slot.link.request(["install_faults", plan.to_abstract()])

    def clear_fault_plan(self) -> None:
        for slot in self._live_slots():
            slot.link.request(["clear_faults"])

    # enable_telemetry/disable_telemetry/telemetry_snapshot come from
    # RemoteTransport via links() (= every live slot's link); the bus
    # calls them on routing rebuilds to keep workers recording and to
    # merge their counters back on read.

    def telemetry_counters(self) -> Dict[str, Dict[str, int]]:
        """Per-worker counter snapshots, keyed by worker host name."""
        out: Dict[str, Dict[str, int]] = {}
        for slot in self._live_slots():
            raw = slot.link.request(["telemetry_counters"])
            out[slot.name] = {str(k): int(v) for k, v in dict(raw).items()}  # type: ignore[call-overload]
        return out

    # -- teardown ---------------------------------------------------------------

    def close(self) -> None:
        with self._slots_lock:
            slots = [slot for slot in self._slots if slot is not None]
            self._slots = [None] * len(self._slots)
        for slot in slots:
            try:
                slot.link.request(["shutdown"], timeout=5)
            except (BusError, TransportError):
                pass
            slot.link.close()
        for slot in slots:
            slot.process.join(timeout=5)
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(timeout=5)
