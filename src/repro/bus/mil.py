"""The configuration language (MIL) of Figure 2.

A lexer + recursive-descent parser for specifications like::

    module compute {
      source = "./compute.py" ::
      server interface display pattern = {integer} returns = {float} ::
      use interface sensor pattern = {-integer} ::
      reconfiguration point = {R} ::
    }
    module monitor {
      instance display
      instance compute machine = "remote"
      instance sensor
      bind "display temper" "compute display"
      bind "sensor out" "compute sensor"
    }

Deliberate fidelity notes: the paper's Figure 2 writes ``accepts{-float}``
(no ``=``) and calls the application block a ``module`` — both are
accepted; ``::`` separators and ``#`` comments are skipped; a leading
``-`` or ``'`` on a pattern name (both appear in the figure) is
tolerated.  A block containing ``instance``/``bind`` statements is an
application specification; anything else is a module specification.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bus.interfaces import InterfaceDecl, Role
from repro.bus.spec import (
    ApplicationSpec,
    BindingSpec,
    Configuration,
    InstanceSpec,
    ModuleSpec,
)
from repro.errors import MILSyntaxError
from repro.state.format import pattern_to_format

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<sep>::|,)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<punct>[{}=:])
  | (?P<word>[A-Za-z0-9_.'\-/]+)
    """,
    re.VERBOSE,
)


@dataclass
class Token:
    kind: str  # 'string' | 'punct' | 'word' | 'eof'
    value: str
    lineno: int
    col: int


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    lineno, line_start = 1, 0
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            col = pos - line_start + 1
            raise MILSyntaxError(
                f"unexpected character {text[pos]!r}", lineno=lineno, col=col
            )
        kind = match.lastgroup
        value = match.group()
        if kind not in ("ws", "comment", "sep"):
            tokens.append(
                Token(kind=kind, value=value, lineno=lineno, col=pos - line_start + 1)
            )
        newlines = value.count("\n")
        if newlines:
            lineno += newlines
            line_start = pos + value.rfind("\n") + 1
        pos = match.end()
    tokens.append(Token("eof", "", lineno, 1))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def take(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> MILSyntaxError:
        token = token or self.peek()
        return MILSyntaxError(message, lineno=token.lineno, col=token.col)

    def expect_word(self, *values: str) -> Token:
        token = self.take()
        if token.kind != "word" or (values and token.value not in values):
            expected = " or ".join(values) if values else "identifier"
            raise self.error(f"expected {expected}, found {token.value!r}", token)
        return token

    def expect_punct(self, value: str) -> Token:
        token = self.take()
        if token.kind != "punct" or token.value != value:
            raise self.error(f"expected {value!r}, found {token.value!r}", token)
        return token

    def expect_string(self) -> str:
        token = self.take()
        if token.kind != "string":
            raise self.error(f"expected string literal, found {token.value!r}", token)
        return token.value[1:-1].replace('\\"', '"').replace("\\\\", "\\")

    def accept_punct(self, value: str) -> bool:
        token = self.peek()
        if token.kind == "punct" and token.value == value:
            self.take()
            return True
        return False

    def accept_word(self, value: str) -> bool:
        token = self.peek()
        if token.kind == "word" and token.value == value:
            self.take()
            return True
        return False

    # -- grammar -----------------------------------------------------------------

    def parse_configuration(self) -> Configuration:
        config = Configuration()
        while self.peek().kind != "eof":
            keyword = self.expect_word("module", "application", "orchestrate")
            name = self.expect_word().value
            block_tokens_start = self.pos
            kind = self._classify_block(keyword.value)
            self.pos = block_tokens_start
            if kind == "application":
                app = self._parse_application(name)
                if config.application is not None:
                    raise self.error(
                        f"second application block {name!r}; only one allowed"
                    )
                config.application = app
            else:
                spec = self._parse_module(name)
                if spec.name in config.modules:
                    raise self.error(f"module {spec.name!r} specified twice")
                config.modules[spec.name] = spec
        config.validate()
        return config

    def _classify_block(self, keyword: str) -> str:
        """The paper writes the application block as ``module monitor``;
        classify by content."""
        if keyword in ("application", "orchestrate"):
            return "application"
        depth = 0
        pos = self.pos
        kind = "module"
        while pos < len(self.tokens):
            token = self.tokens[pos]
            if token.kind == "punct" and token.value == "{":
                depth += 1
            elif token.kind == "punct" and token.value == "}":
                depth -= 1
                if depth == 0:
                    break
            elif depth == 1 and token.kind == "word" and token.value in (
                "instance",
                "bind",
            ):
                kind = "application"
            pos += 1
        return kind

    # -- module specification ------------------------------------------------------

    def _parse_module(self, name: str) -> ModuleSpec:
        spec = ModuleSpec(name=name)
        self.expect_punct("{")
        while not self.accept_punct("}"):
            token = self.peek()
            if token.kind == "eof":
                raise self.error(f"unterminated module block {name!r}")
            word = self.expect_word().value
            if word == "source":
                self.expect_punct("=")
                spec.source = self.expect_string()
            elif word in ("client", "server", "use", "define"):
                spec.interfaces.append(self._parse_interface(Role(word)))
            elif word == "interface":
                # Bare 'interface' defaults to bidirectional client role.
                self.pos -= 1
                self.take()
                raise self.error(
                    "interface declarations need a role: client, server, "
                    "use, or define"
                )
            elif word == "reconfiguration":
                self.expect_word("point")
                self.expect_punct("=")
                spec.reconfig_points.extend(self._parse_name_list())
            else:
                # Free-form attribute: NAME = "value"
                self.expect_punct("=")
                spec.attributes[word] = self.expect_string()
        return spec

    def _parse_interface(self, role: Role) -> InterfaceDecl:
        self.expect_word("interface")
        name = self.expect_word().value
        pattern = ""
        returns = ""
        while True:
            token = self.peek()
            if token.kind == "word" and token.value == "pattern":
                self.take()
                self.accept_punct("=")
                pattern = pattern_to_format(self._parse_name_list())
            elif token.kind == "word" and token.value in ("returns", "accepts"):
                self.take()
                self.accept_punct("=")
                returns = pattern_to_format(self._parse_name_list())
            else:
                break
        return InterfaceDecl(name=name, role=role, pattern=pattern, returns=returns)

    def _parse_name_list(self) -> List[str]:
        """Parse ``{name name ...}`` tolerating the figure's stray quotes."""
        self.expect_punct("{")
        names: List[str] = []
        while not self.accept_punct("}"):
            token = self.take()
            if token.kind == "eof":
                raise self.error("unterminated { } list")
            if token.kind != "word":
                raise self.error(f"unexpected {token.value!r} in {{ }} list", token)
            names.append(token.value.lstrip("'"))
        return names

    # -- application specification ----------------------------------------------------

    def _parse_application(self, name: str) -> ApplicationSpec:
        app = ApplicationSpec(name=name)
        self.expect_punct("{")
        while not self.accept_punct("}"):
            token = self.peek()
            if token.kind == "eof":
                raise self.error(f"unterminated application block {name!r}")
            word = self.expect_word("instance", "bind").value
            if word == "instance":
                app.instances.append(self._parse_instance())
            else:
                app.bindings.append(self._parse_binding())
        return app

    def _parse_instance(self) -> InstanceSpec:
        instance = self.expect_word().value
        module = instance
        if self.accept_punct(":"):
            module = self.expect_word().value
        inst = InstanceSpec(instance=instance, module=module)
        # Optional attribute assignments: machine = "host" ...
        while (
            self.peek().kind == "word"
            and self.pos + 1 < len(self.tokens)
            and self.tokens[self.pos + 1].kind == "punct"
            and self.tokens[self.pos + 1].value == "="
        ):
            key = self.expect_word().value
            self.expect_punct("=")
            value = self.expect_string()
            if key == "machine":
                inst.machine = value
            else:
                inst.attributes[key] = value
        return inst

    def _parse_binding(self) -> BindingSpec:
        left = self._parse_endpoint(self.expect_string())
        right = self._parse_endpoint(self.expect_string())
        return BindingSpec(
            from_instance=left[0],
            from_interface=left[1],
            to_instance=right[0],
            to_interface=right[1],
        )

    def _parse_endpoint(self, text: str) -> Tuple[str, str]:
        parts = text.split()
        if len(parts) != 2:
            raise self.error(
                f'binding endpoint {text!r} must be "instance interface"'
            )
        return parts[0], parts[1]


def parse_mil(text: str) -> Configuration:
    """Parse a complete MIL configuration (module specs + application)."""
    return _Parser(tokenize(text)).parse_configuration()


def parse_module_spec(text: str) -> ModuleSpec:
    """Parse a single module specification block."""
    config = parse_mil(text)
    if config.application is not None or len(config.modules) != 1:
        raise MILSyntaxError("expected exactly one module specification")
    return next(iter(config.modules.values()))
