"""Messages carried by the software bus.

Every message crossing a (simulated) machine boundary travels in the
canonical abstract encoding: the sender's host encodes with its own
:class:`~repro.state.machine.MachineProfile`, the receiver decodes with
its own — this is POLYLITH's "data transformation needed to communicate
across heterogeneous hosts", applied to ordinary messages as well as to
process-state packets.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import EncodingError, FormatError
from repro.state.encoding import decode_values, encode_values
from repro.state.format import check_arity
from repro.state.machine import MachineProfile

_sequence = itertools.count(1)
_sequence_lock = threading.Lock()


def _next_seq() -> int:
    with _sequence_lock:
        return next(_sequence)


@dataclass
class Message:
    """One asynchronous message on a binding.

    ``fmt``/``values`` follow the interface's declared pattern; ``source``
    identifies the sending (instance, interface) endpoint for tracing and
    for the reply routing of client/server interfaces.
    """

    values: List[object]
    fmt: str = ""
    source_instance: str = ""
    source_interface: str = ""
    seq: int = field(default_factory=_next_seq)

    def validated(self) -> "Message":
        """Check values against the declared format (raises FormatError)."""
        if self.fmt:
            check_arity(self.fmt, self.values)
        return self

    # -- wire form ------------------------------------------------------------

    def to_wire(self, machine: Optional[MachineProfile]) -> bytes:
        """Canonical encoding as produced on the *sender's* machine.

        Every value must be canonically encodable: a message that only
        ever crossed same-process queues could carry arbitrary objects,
        but the moment it is routed to another process (worker pool, TCP
        daemon) it must survive the wire.  Encoder failures are rewrapped
        with the sending endpoint so the offending write is findable.
        """
        try:
            header = encode_values(
                "ssl",
                [self.source_instance, self.source_interface, self.seq],
                machine,
            )
            if self.fmt:
                body = encode_values(self.fmt, self.values, machine)
            else:
                body = encode_values(
                    "a" * len(self.values), self.values, machine
                )
        except (EncodingError, FormatError) as exc:
            # FormatError covers values whose type cannot even be
            # inferred (locks, sockets, ...) on format-less messages.
            raise EncodingError(
                f"message from {self.source_instance or '?'}."
                f"{self.source_interface or '?'} is not wire-encodable "
                f"(required for cross-process delivery): {exc}"
            ) from exc
        return header + body

    @classmethod
    def from_wire(
        cls, data: bytes, machine: Optional[MachineProfile]
    ) -> "Message":
        """Decode on the *receiver's* machine (self-describing body)."""
        values = decode_values(data, machine)
        if len(values) < 3:
            from repro.errors import DecodingError

            raise DecodingError("message wire form too short")
        source_instance, source_interface, seq = values[:3]
        return cls(
            values=list(values[3:]),
            fmt="",
            source_instance=str(source_instance),
            source_interface=str(source_interface),
            seq=int(seq),  # type: ignore[arg-type]
        )

    def transferred(
        self,
        sender: Optional[MachineProfile],
        receiver: Optional[MachineProfile],
    ) -> "Message":
        """The message as seen after crossing sender -> receiver.

        Same-machine delivery is a no-op; cross-machine delivery round-trips
        the canonical wire form, enforcing representability on both ends.
        """
        if sender is receiver or sender is None or receiver is None:
            return self
        if sender.name == receiver.name:
            return self
        return Message.from_wire(self.to_wire(sender), receiver)


class FanoutTransfer:
    """Encode-once view of one message delivered to many receivers.

    A broadcast ``route`` may cross the machine boundary once per peer;
    naively that re-encodes the sender's wire form for every receiver and
    re-decodes it for every receiver, even when many receivers share a
    machine profile.  This helper encodes the wire form at most once per
    fan-out and decodes at most once per *distinct* receiver profile
    (memoized by profile name), so an N-way cross-host fan-out costs one
    encode plus ``len(profiles)`` decodes instead of N of each.

    The per-profile decoded message is shared between same-profile
    receivers — safe because delivered messages are treated as immutable
    (same-host broadcast already shares the sender's message object).
    """

    __slots__ = ("message", "_sender", "_wire", "_decoded")

    def __init__(self, message: Message, sender: Optional[MachineProfile]):
        self.message = message
        self._sender = sender
        self._wire: Optional[bytes] = None
        self._decoded: dict = {}

    def for_profile(self, receiver: Optional[MachineProfile]) -> Message:
        """The message as decoded on ``receiver`` (identity when local)."""
        sender = self._sender
        if sender is receiver or sender is None or receiver is None:
            return self.message
        if sender.name == receiver.name:
            return self.message
        cached = self._decoded.get(receiver.name)
        if cached is None:
            if self._wire is None:
                self._wire = self.message.to_wire(sender)
            cached = Message.from_wire(self._wire, receiver)
            self._decoded[receiver.name] = cached
        return cached
