"""Simulated hosts.

Each host carries a :class:`~repro.state.machine.MachineProfile`; a
module instance placed on a host inherits its architecture, and every
message or state packet crossing two hosts with different profiles is
round-tripped through the canonical abstract encoding (see
:meth:`repro.bus.message.Message.transferred`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import BusError
from repro.state.machine import MACHINES, Endianness, MachineProfile


@dataclass
class Host:
    """A named machine modules can be placed on."""

    name: str
    profile: MachineProfile

    def describe(self) -> str:
        return f"host {self.name} ({self.profile.describe()})"


class HostRegistry:
    """The set of machines known to a software bus."""

    def __init__(self):
        self._hosts: Dict[str, Host] = {}

    def add(self, name: str, profile: Optional[MachineProfile] = None) -> Host:
        if name in self._hosts:
            raise BusError(f"host {name!r} already registered")
        if profile is None:
            profile = MachineProfile(name, Endianness.LITTLE)
        elif profile.name != name:
            # Rebrand the architecture profile with the host's name so
            # captured states record *which machine* they came from.
            profile = MachineProfile(
                name=name,
                endianness=profile.endianness,
                int_bits=profile.int_bits,
                long_bits=profile.long_bits,
                float_bits=profile.float_bits,
            )
        host = Host(name=name, profile=profile)
        self._hosts[name] = host
        return host

    def add_catalogued(self, name: str, architecture: str) -> Host:
        """Register a host with one of the catalogue architectures."""
        try:
            profile = MACHINES[architecture]
        except KeyError:
            raise BusError(
                f"unknown architecture {architecture!r}; catalogue: "
                f"{', '.join(sorted(MACHINES))}"
            ) from None
        return self.add(name, profile)

    def adopt(self, host: Host) -> Host:
        """Register a pre-built host (a transport's worker slot or machine
        daemon), idempotently: placing two modules on the same slot must
        not trip the duplicate-registration guard."""
        existing = self._hosts.get(host.name)
        if existing is not None:
            return existing
        self._hosts[host.name] = host
        return host

    def get(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise BusError(f"unknown host {name!r}") from None

    def ensure(self, name: str) -> Host:
        """Get a host, auto-registering a default profile if unknown."""
        if name not in self._hosts:
            return self.add(name)
        return self._hosts[name]

    def names(self):
        return sorted(self._hosts)

    def __contains__(self, name: str) -> bool:
        return name in self._hosts

    def __len__(self) -> int:
        return len(self._hosts)
