"""Named, directional module interfaces (paper Section 1.1, Figure 2).

"Modules can communicate with each other via named interfaces, which are
logical communication ports designated as incoming, outgoing, or
bi-directional."  The MIL of Figure 2 declares interfaces with *roles*:

====================  ==========================================
``define interface``  outgoing stream (sensor's ``out``)
``use interface``     incoming stream (compute's ``sensor``)
``client interface``  bi-directional, initiates request/reply
                      (display's ``temper``)
``server interface``  bi-directional, answers request/reply
                      (compute's ``display``)
====================  ==========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SpecError


class Direction(enum.Enum):
    INCOMING = "incoming"
    OUTGOING = "outgoing"
    BIDIRECTIONAL = "bidirectional"

    @property
    def can_send(self) -> bool:
        return self in (Direction.OUTGOING, Direction.BIDIRECTIONAL)

    @property
    def can_receive(self) -> bool:
        return self in (Direction.INCOMING, Direction.BIDIRECTIONAL)


class Role(enum.Enum):
    """MIL interface roles, mapped onto directions."""

    DEFINE = "define"  # outgoing
    USE = "use"  # incoming
    CLIENT = "client"  # bidirectional (sends pattern, accepts replies)
    SERVER = "server"  # bidirectional (receives pattern, returns replies)

    @property
    def direction(self) -> Direction:
        if self is Role.DEFINE:
            return Direction.OUTGOING
        if self is Role.USE:
            return Direction.INCOMING
        return Direction.BIDIRECTIONAL


@dataclass
class InterfaceDecl:
    """One declared interface of a module.

    ``pattern`` is the format string of messages travelling in the
    interface's primary direction; ``returns`` (servers) / ``accepts``
    (clients) is the format of the reply leg of a bi-directional
    interface.
    """

    name: str
    role: Role
    pattern: str = ""
    returns: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("interface name must be non-empty")

    @property
    def direction(self) -> Direction:
        return self.role.direction

    def send_fmt(self) -> str:
        """Format of messages this side sends on the interface."""
        if self.role in (Role.DEFINE, Role.CLIENT):
            return self.pattern
        if self.role is Role.SERVER:
            return self.returns
        raise SpecError(f"interface {self.name!r} ({self.role.value}) cannot send")

    def receive_fmt(self) -> str:
        """Format of messages this side receives on the interface."""
        if self.role in (Role.USE, Role.SERVER):
            return self.pattern
        if self.role is Role.CLIENT:
            return self.returns
        raise SpecError(f"interface {self.name!r} ({self.role.value}) cannot receive")

    def compatible_with(self, other: "InterfaceDecl") -> bool:
        """Can a binding connect this interface to ``other``?

        Streams: an outgoing side must meet an incoming side.
        Request/reply: a client must meet a server, and the patterns of
        the two legs must agree (the bus checks shape, not semantics).
        """
        pair = {self.role, other.role}
        if pair == {Role.DEFINE, Role.USE}:
            return self.pattern == other.pattern or not self.pattern or not other.pattern
        if pair == {Role.CLIENT, Role.SERVER}:
            client, server = (
                (self, other) if self.role is Role.CLIENT else (other, self)
            )
            request_ok = (
                not client.pattern
                or not server.pattern
                or client.pattern == server.pattern
            )
            reply_ok = (
                not client.returns
                or not server.returns
                or client.returns == server.returns
            )
            return request_ok and reply_ok
        return False

    def describe(self) -> str:
        """MIL-syntax rendering (re-parseable by the MIL parser)."""
        from repro.state.format import format_to_pattern

        parts = [f"{self.role.value} interface {self.name}"]
        if self.pattern:
            parts.append(f"pattern = {{{format_to_pattern(self.pattern)}}}")
        if self.returns:
            key = "returns" if self.role is Role.SERVER else "accepts"
            parts.append(f"{key} = {{{format_to_pattern(self.returns)}}}")
        return " ".join(parts)


def find_interface(interfaces: List[InterfaceDecl], name: str) -> Optional[InterfaceDecl]:
    for decl in interfaces:
        if decl.name == name:
            return decl
    return None
