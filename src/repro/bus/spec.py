"""Module and application specifications (paper Figure 2).

"Each of the three modules is described by a *module specification*,
which defines the interfaces of the module, where the executable resides,
and other attributes.  The *application specification* lists the modules
used in the application and the bindings between interfaces."

A :class:`ModuleSpec` additionally carries the reconfiguration points
(the only change the paper makes to a configuration to render a module
reconfigurable) and free-form attributes such as MACHINE and STATUS —
the replacement script of Figure 5 creates the new module from the old
module's spec with a new MACHINE attribute and STATUS ``"clone"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.bus.interfaces import InterfaceDecl, Role, find_interface
from repro.errors import SpecError


@dataclass
class ModuleSpec:
    """One module's specification."""

    name: str
    source: str = ""  # path or inline source (see ``inline_source``)
    interfaces: List[InterfaceDecl] = field(default_factory=list)
    reconfig_points: List[str] = field(default_factory=list)
    attributes: Dict[str, str] = field(default_factory=dict)
    inline_source: str = ""  # Python source text; takes precedence over path

    def interface(self, name: str) -> InterfaceDecl:
        decl = find_interface(self.interfaces, name)
        if decl is None:
            raise SpecError(f"module {self.name!r} has no interface {name!r}")
        return decl

    def has_interface(self, name: str) -> bool:
        return find_interface(self.interfaces, name) is not None

    def interface_names(self) -> List[str]:
        return [decl.name for decl in self.interfaces]

    @property
    def is_reconfigurable(self) -> bool:
        return bool(self.reconfig_points)

    def with_attributes(self, **attrs: str) -> "ModuleSpec":
        """Copy with updated attributes (the Figure 5 new-module spec)."""
        merged = dict(self.attributes)
        merged.update(attrs)
        return replace(
            self,
            interfaces=list(self.interfaces),
            reconfig_points=list(self.reconfig_points),
            attributes=merged,
        )

    def to_abstract(self, prepared_source: str) -> Dict[str, object]:
        """Plain-value form shipped to a remote module host.

        ``prepared_source`` is the already-transformed source text — the
        paper prepares modules "when the original program is compiled",
        so remote hosts (worker processes, machine daemons) never run the
        transformer; reconfiguration points therefore do not travel.
        Attribute values are validated here: a spec is the one bus object
        that user code builds freely, so a thread handle or closure
        smuggled into ``attributes`` must fail loudly at the process
        boundary, not as an opaque encoder error in a worker.
        """
        for key, value in self.attributes.items():
            if not isinstance(key, str) or not isinstance(value, str):
                raise SpecError(
                    f"module {self.name!r}: attribute {key!r} must map a "
                    f"string to a string to cross a process boundary "
                    f"(got {type(value).__name__})"
                )
        return {
            "name": self.name,
            "source": prepared_source,
            "interfaces": [
                {
                    "name": decl.name,
                    "role": decl.role.value,
                    "pattern": decl.pattern,
                    "returns": decl.returns,
                }
                for decl in self.interfaces
            ],
            "attributes": dict(self.attributes),
        }

    def describe(self) -> str:
        lines = [f"module {self.name} {{"]
        if self.source:
            lines.append(f'  source = "{self.source}"')
        for decl in self.interfaces:
            lines.append(f"  {decl.describe()}")
        if self.reconfig_points:
            lines.append(
                "  reconfiguration point = {" + ", ".join(self.reconfig_points) + "}"
            )
        for key, value in self.attributes.items():
            lines.append(f'  {key} = "{value}"')
        lines.append("}")
        return "\n".join(lines)


def spec_from_abstract(value: Dict[str, object]) -> ModuleSpec:
    """Rebuild a spec from :meth:`ModuleSpec.to_abstract` output.

    The rebuilt spec carries the prepared source inline and no
    reconfiguration points (preparation happened bus-side).
    """
    interfaces = [
        InterfaceDecl(
            name=str(item["name"]),
            role=Role(str(item["role"])),
            pattern=str(item["pattern"]),
            returns=str(item["returns"]),
        )
        for item in value["interfaces"]  # type: ignore[union-attr]
    ]
    return ModuleSpec(
        name=str(value["name"]),
        inline_source=str(value["source"]),
        interfaces=interfaces,
        reconfig_points=[],  # source arrives already prepared
        attributes={
            str(k): str(v)
            for k, v in dict(value["attributes"]).items()  # type: ignore[call-overload]
        },
    )


@dataclass(frozen=True)
class BindingSpec:
    """A binding between two (instance, interface) endpoints."""

    from_instance: str
    from_interface: str
    to_instance: str
    to_interface: str

    def endpoints(self) -> Tuple[Tuple[str, str], Tuple[str, str]]:
        return (
            (self.from_instance, self.from_interface),
            (self.to_instance, self.to_interface),
        )

    def involves(self, instance: str) -> bool:
        return instance in (self.from_instance, self.to_instance)

    def describe(self) -> str:
        return (
            f'bind "{self.from_instance} {self.from_interface}" '
            f'"{self.to_instance} {self.to_interface}"'
        )


@dataclass
class InstanceSpec:
    """One instantiation of a module within an application."""

    instance: str
    module: str
    machine: str = ""
    attributes: Dict[str, str] = field(default_factory=dict)


@dataclass
class ApplicationSpec:
    """The application specification: instances plus bindings."""

    name: str
    instances: List[InstanceSpec] = field(default_factory=list)
    bindings: List[BindingSpec] = field(default_factory=list)

    def instance(self, name: str) -> InstanceSpec:
        for inst in self.instances:
            if inst.instance == name:
                return inst
        raise SpecError(f"application {self.name!r} has no instance {name!r}")

    def instance_names(self) -> List[str]:
        return [inst.instance for inst in self.instances]

    def bindings_of(self, instance: str) -> List[BindingSpec]:
        return [b for b in self.bindings if b.involves(instance)]

    def validate(self, modules: Dict[str, ModuleSpec]) -> None:
        """Cross-check instances and bindings against module specs."""
        for inst in self.instances:
            if inst.module not in modules:
                raise SpecError(
                    f"instance {inst.instance!r} uses unknown module "
                    f"{inst.module!r}"
                )
        by_instance = {inst.instance: modules[inst.module] for inst in self.instances}
        for binding in self.bindings:
            for instance, interface in binding.endpoints():
                if instance not in by_instance:
                    raise SpecError(
                        f"{binding.describe()}: unknown instance {instance!r}"
                    )
                if not by_instance[instance].has_interface(interface):
                    raise SpecError(
                        f"{binding.describe()}: module "
                        f"{by_instance[instance].name!r} has no interface "
                        f"{interface!r}"
                    )
            left = by_instance[binding.from_instance].interface(binding.from_interface)
            right = by_instance[binding.to_instance].interface(binding.to_interface)
            if not left.compatible_with(right):
                raise SpecError(
                    f"{binding.describe()}: incompatible interfaces "
                    f"({left.describe()} vs {right.describe()})"
                )

    def describe(self) -> str:
        lines = [f"application {self.name} {{"]
        for inst in self.instances:
            line = f"  instance {inst.instance}"
            if inst.module != inst.instance:
                line += f" : {inst.module}"
            if inst.machine:
                line += f' machine = "{inst.machine}"'
            lines.append(line)
        for binding in self.bindings:
            lines.append(f"  {binding.describe()}")
        lines.append("}")
        return "\n".join(lines)


@dataclass
class Configuration:
    """A parsed MIL file: module specs plus (optionally) an application."""

    modules: Dict[str, ModuleSpec] = field(default_factory=dict)
    application: Optional[ApplicationSpec] = None

    def module(self, name: str) -> ModuleSpec:
        try:
            return self.modules[name]
        except KeyError:
            raise SpecError(f"no module specification named {name!r}") from None

    def validate(self) -> None:
        if self.application is not None:
            self.application.validate(self.modules)
