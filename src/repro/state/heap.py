"""Heap capture and restoration.

The paper (Section 1.2): "The data stored in the heap is dynamically
allocated by the programmer.  At the present time, the programmer must
write code to capture and restore heap data structures."  We provide that
exact mechanism — :func:`heap_hook` registers programmer-written
capture/restore routines — and additionally an *automatic* codec
(:class:`HeapCodec`) for plain object graphs, built on the symbolic
pointer translation the paper sketches for pointer variables.  The
automatic codec handles aliasing and cycles: every container becomes a
named heap segment and references between containers become
:class:`~repro.state.pointers.SymbolicPointer` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import HeapError
from repro.state.pointers import SymbolicPointer

#: Programmer hook: name -> (capture() -> abstract value, restore(value) -> obj)
_HOOKS: Dict[str, Tuple[Callable[[object], object], Callable[[object], object]]] = {}


def heap_hook(
    name: str,
    capture: Callable[[object], object],
    restore: Callable[[object], object],
) -> None:
    """Register programmer-written heap capture/restore routines.

    ``capture`` maps the live structure to an abstractly-encodable value;
    ``restore`` rebuilds the structure from that value.  This is the
    paper's stated mechanism for heap data the platform cannot handle
    automatically.
    """
    _HOOKS[name] = (capture, restore)


def run_capture_hook(name: str, structure: object) -> object:
    try:
        capture, _ = _HOOKS[name]
    except KeyError:
        raise HeapError(f"no heap hook registered under {name!r}") from None
    return capture(structure)


def run_restore_hook(name: str, value: object) -> object:
    try:
        _, restore = _HOOKS[name]
    except KeyError:
        raise HeapError(f"no heap hook registered under {name!r}") from None
    return restore(value)


def registered_hooks() -> List[str]:
    return sorted(_HOOKS)


def clear_hooks() -> None:
    """Reset the hook registry (tests only)."""
    _HOOKS.clear()


@dataclass
class HeapImage:
    """A flattened, machine-independent image of a heap object graph.

    ``roots`` maps root names to values; ``segments`` maps segment ids to
    flattened container contents.  Inside both, references to shared or
    cyclic containers appear as :class:`SymbolicPointer` values whose
    segment names key into ``segments``.  The whole image is encodable
    with format char ``a``.
    """

    roots: Dict[str, object] = field(default_factory=dict)
    segments: Dict[str, object] = field(default_factory=dict)

    def to_abstract(self) -> Dict[str, object]:
        return {"roots": dict(self.roots), "segments": dict(self.segments)}

    @classmethod
    def from_abstract(cls, value: object) -> "HeapImage":
        if not isinstance(value, dict) or set(value) != {"roots", "segments"}:
            raise HeapError(f"malformed heap image: {value!r}")
        roots = value["roots"]
        segments = value["segments"]
        if not isinstance(roots, dict) or not isinstance(segments, dict):
            raise HeapError("malformed heap image: roots/segments not dicts")
        return cls(roots=dict(roots), segments=dict(segments))


_SCALARS = (type(None), bool, int, float, str, bytes)


class HeapCodec:
    """Automatic capture/restore of plain heap object graphs.

    Supported node types: scalars, ``list``, ``dict``, ``tuple`` and
    :class:`SymbolicPointer` (passed through).  Lists and dicts are
    mutable and therefore interned as segments, so aliasing and cycles
    are preserved exactly; tuples are immutable and flattened in place
    unless they participate in a cycle through a mutable container.
    """

    def __init__(self, prefix: str = "heap"):
        self._prefix = prefix

    # -- capture -----------------------------------------------------------------

    def capture(self, roots: Dict[str, object]) -> HeapImage:
        image = HeapImage()
        seen: Dict[int, str] = {}
        counter = [0]

        def intern(obj: object) -> SymbolicPointer:
            key = id(obj)
            if key in seen:
                return SymbolicPointer(seen[key], 0)
            segment = f"{self._prefix}:{counter[0]}"
            counter[0] += 1
            seen[key] = segment
            # Reserve the slot before recursing so cycles terminate.
            image.segments[segment] = None
            image.segments[segment] = flatten_children(obj)
            return SymbolicPointer(segment, 0)

        def flatten_children(obj: object) -> object:
            if isinstance(obj, list):
                return ["list", [flatten(v) for v in obj]]
            if isinstance(obj, dict):
                items = [[flatten(k), flatten(v)] for k, v in obj.items()]
                return ["dict", items]
            raise HeapError(f"cannot intern heap node of type {type(obj).__name__}")

        def flatten(obj: object) -> object:
            if isinstance(obj, SymbolicPointer):
                return obj
            if isinstance(obj, _SCALARS):
                return obj
            if isinstance(obj, (list, dict)):
                return intern(obj)
            if isinstance(obj, tuple):
                return ("tuple", tuple(flatten(v) for v in obj))
            raise HeapError(
                f"heap value of type {type(obj).__name__} needs a heap_hook "
                f"(the paper requires programmer code for such structures)"
            )

        for name, obj in roots.items():
            image.roots[name] = flatten(obj)
        return image

    # -- restore ------------------------------------------------------------------

    def restore(self, image: HeapImage) -> Dict[str, object]:
        rebuilt: Dict[str, object] = {}

        def build_segment(segment: str) -> object:
            if segment in rebuilt:
                return rebuilt[segment]
            try:
                node = image.segments[segment]
            except KeyError:
                raise HeapError(f"dangling heap segment {segment!r}") from None
            if not isinstance(node, list) or len(node) != 2:
                raise HeapError(f"malformed heap segment {segment!r}: {node!r}")
            kind, payload = node
            if kind == "list":
                shell: object = []
                rebuilt[segment] = shell
                shell.extend(unflatten(v) for v in payload)  # type: ignore[union-attr]
                return shell
            if kind == "dict":
                shell = {}
                rebuilt[segment] = shell
                for pair in payload:
                    if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                        raise HeapError(f"malformed dict entry in {segment!r}")
                    key, value = pair
                    shell[unflatten(key)] = unflatten(value)  # type: ignore[index]
                return shell
            raise HeapError(f"unknown heap node kind {kind!r}")

        def unflatten(value: object) -> object:
            if isinstance(value, SymbolicPointer):
                if value.segment in image.segments:
                    target = build_segment(value.segment)
                    if value.index:
                        raise HeapError(
                            f"non-zero index {value.index} into container segment"
                        )
                    return target
                # Pointer to something outside the heap image: keep symbolic.
                return value
            if isinstance(value, tuple) and len(value) == 2 and value[0] == "tuple":
                return tuple(unflatten(v) for v in value[1])
            if isinstance(value, _SCALARS):
                return value
            raise HeapError(f"malformed heap image value {value!r}")

        return {name: unflatten(value) for name, value in image.roots.items()}

    # -- convenience ---------------------------------------------------------------

    def roundtrip(self, roots: Dict[str, object]) -> Dict[str, object]:
        """Capture then restore — used by tests and the heap benchmarks."""
        image = HeapImage.from_abstract(self.capture(roots).to_abstract())
        return self.restore(image)
