"""Abstract, machine-independent process state (paper Section 1.2).

The paper characterises a process state abstractly — static data, the
activation-record stack, heap data, and resume locations — so that a module
captured on one architecture can be restored on another.  This package
implements that characterisation:

- :mod:`repro.state.format` — typed format strings (the paper's ``"llF"``)
- :mod:`repro.state.machine` — simulated machine architectures and
  native <-> canonical translation
- :mod:`repro.state.encoding` — the canonical byte-level abstract encoding
- :mod:`repro.state.frames` — activation records, stack state, process state
- :mod:`repro.state.pointers` — symbolic pointer translation
- :mod:`repro.state.heap` — heap capture/restore (hooks + automatic graphs)
"""

from repro.state.format import (
    TypeSpec,
    ScalarType,
    ListType,
    TupleType,
    DictType,
    parse_format,
    format_of_value,
    value_matches,
    MIL_PATTERN_NAMES,
    pattern_to_format,
)
from repro.state.machine import MachineProfile, Endianness, MACHINES
from repro.state.encoding import (
    Encoder,
    Decoder,
    encode_values,
    decode_values,
    encode_any,
    decode_any,
)
from repro.state.frames import (
    ActivationRecord,
    StackState,
    StateHeader,
    ProcessState,
    peek_state_header,
)
from repro.state.pointers import SymbolicPointer, PointerTable
from repro.state.heap import HeapImage, HeapCodec, heap_hook

__all__ = [
    "TypeSpec",
    "ScalarType",
    "ListType",
    "TupleType",
    "DictType",
    "parse_format",
    "format_of_value",
    "value_matches",
    "MIL_PATTERN_NAMES",
    "pattern_to_format",
    "MachineProfile",
    "Endianness",
    "MACHINES",
    "Encoder",
    "Decoder",
    "encode_values",
    "decode_values",
    "encode_any",
    "decode_any",
    "ActivationRecord",
    "StackState",
    "StateHeader",
    "ProcessState",
    "peek_state_header",
    "SymbolicPointer",
    "PointerTable",
    "HeapImage",
    "HeapCodec",
    "heap_hook",
]
