"""Typed format strings for abstract state capture (the paper's ``"llF"``).

In Figure 4 the generated code captures state with calls such as
``mh_capture("llF", 1, n, response)``: a format string declares the abstract
type of every captured value, and the first value is always the integer
*location* where execution resumes.  This module defines the format-string
language used throughout the reproduction.

Scalar format characters
------------------------

======  =============================================================
 char    meaning
======  =============================================================
``b``   boolean
``i``   machine integer (width from the machine profile)
``l``   machine long integer (width from the machine profile)
``f``   single-precision float (round-tripped through IEEE binary32)
``F``   double-precision float (IEEE binary64)
``s``   text string (UTF-8 in the canonical encoding)
``B``   byte string
``p``   symbolic pointer (a translated address, paper Section 3)
``n``   the unit/None value
``a``   *any*: self-describing; the canonical encoding embeds a tag
======  =============================================================

Compound syntax
---------------

- ``[T]``     homogeneous list of ``T``
- ``(T1T2)``  tuple whose elements are ``T1``, ``T2``, ...
- ``{KV}``    dict mapping key type ``K`` to value type ``V``

Example: ``"il[F](si)"`` declares an int, a long, a list of doubles and an
(str, int) tuple.

The POLYLITH configuration language of Figure 2 declares interface message
*patterns* with names (``pattern = {integer}``); :func:`pattern_to_format`
maps those names onto format characters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from repro.errors import FormatError

SCALAR_CHARS = frozenset("bilfFsBpna")

#: MIL pattern names (Figure 2) -> format characters.
MIL_PATTERN_NAMES = {
    "boolean": "b",
    "integer": "i",
    "long": "l",
    "float": "f",
    "double": "F",
    "string": "s",
    "bytes": "B",
    "pointer": "p",
    "none": "n",
    "any": "a",
}


class TypeSpec:
    """Base class for a parsed format-string node."""

    def format_char(self) -> str:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TypeSpec) and self.format_char() == other.format_char()

    def __hash__(self) -> int:
        return hash(self.format_char())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.format_char()!r})"


@dataclass(frozen=True, eq=False)
class ScalarType(TypeSpec):
    """A scalar format node, one of :data:`SCALAR_CHARS`."""

    char: str

    def __post_init__(self) -> None:
        if self.char not in SCALAR_CHARS:
            raise FormatError(f"unknown scalar format char {self.char!r}")

    def format_char(self) -> str:
        return self.char


@dataclass(frozen=True, eq=False)
class ListType(TypeSpec):
    """A homogeneous list node ``[T]``."""

    element: TypeSpec

    def format_char(self) -> str:
        return f"[{self.element.format_char()}]"


@dataclass(frozen=True, eq=False)
class TupleType(TypeSpec):
    """A fixed-arity tuple node ``(T1T2...)``."""

    elements: Tuple[TypeSpec, ...] = field(default_factory=tuple)

    def format_char(self) -> str:
        inner = "".join(e.format_char() for e in self.elements)
        return f"({inner})"


@dataclass(frozen=True, eq=False)
class DictType(TypeSpec):
    """A dict node ``{KV}`` with key type ``K`` and value type ``V``."""

    key: TypeSpec
    value: TypeSpec

    def format_char(self) -> str:
        return "{" + self.key.format_char() + self.value.format_char() + "}"


class _Parser:
    """Recursive-descent parser over a format string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> FormatError:
        return FormatError(f"{message} at index {self.pos} in format {self.text!r}")

    def peek(self) -> str:
        if self.pos >= len(self.text):
            return ""
        return self.text[self.pos]

    def take(self) -> str:
        ch = self.peek()
        if not ch:
            raise self.error("unexpected end of format")
        self.pos += 1
        return ch

    def parse_one(self) -> TypeSpec:
        ch = self.take()
        if ch in SCALAR_CHARS:
            return ScalarType(ch)
        if ch == "[":
            element = self.parse_one()
            if self.take() != "]":
                raise self.error("expected ']' closing list type")
            return ListType(element)
        if ch == "(":
            elements: List[TypeSpec] = []
            while self.peek() != ")":
                if not self.peek():
                    raise self.error("unterminated tuple type")
                elements.append(self.parse_one())
            self.take()  # consume ')'
            return TupleType(tuple(elements))
        if ch == "{":
            key = self.parse_one()
            value = self.parse_one()
            if self.take() != "}":
                raise self.error("expected '}' closing dict type")
            return DictType(key, value)
        raise self.error(f"unknown format character {ch!r}")

    def parse_all(self) -> List[TypeSpec]:
        specs: List[TypeSpec] = []
        while self.peek():
            specs.append(self.parse_one())
        return specs


@lru_cache(maxsize=4096)
def _parse_format_cached(fmt: str) -> Tuple[TypeSpec, ...]:
    """Parse once per distinct format string.

    Formats recur heavily — every message on an interface carries the
    interface's declared pattern, and every wire header is ``"ssl"`` —
    so the parsed structure is memoized.  :class:`TypeSpec` nodes are
    immutable, making the shared tuple safe to hand out repeatedly.
    """
    return tuple(_Parser(fmt).parse_all())


def parse_format(fmt: str) -> List[TypeSpec]:
    """Parse a format string into a list of :class:`TypeSpec` nodes.

    >>> [s.format_char() for s in parse_format("il[F]")]
    ['i', 'l', '[F]']
    """
    return list(_parse_format_cached(fmt))


def pattern_to_format(names: Sequence[str]) -> str:
    """Translate MIL pattern names into a format string.

    Figure 2 writes ``pattern = {integer}``; the MIL parser hands this
    function ``["integer"]`` and receives ``"i"``.  A leading ``-`` on a
    name (the paper writes ``{-float}``) marks the *reply* part of a
    client/server pattern and is stripped here.
    """
    chars = []
    for name in names:
        clean = name.lstrip("-").strip().lower()
        if clean not in MIL_PATTERN_NAMES:
            raise FormatError(f"unknown MIL pattern name {name!r}")
        chars.append(MIL_PATTERN_NAMES[clean])
    return "".join(chars)


#: Reverse of :data:`MIL_PATTERN_NAMES`, for pretty-printing specs.
FORMAT_CHAR_NAMES = {char: name for name, char in MIL_PATTERN_NAMES.items()}


def format_to_pattern(fmt: str) -> str:
    """Render a scalar format string as MIL pattern names (``"is"`` ->
    ``"integer string"``); inverse of :func:`pattern_to_format`."""
    names = []
    for spec in parse_format(fmt):
        char = spec.format_char()
        if char not in FORMAT_CHAR_NAMES:
            raise FormatError(
                f"format {char!r} has no MIL pattern name (compound "
                f"patterns are not expressible in the MIL)"
            )
        names.append(FORMAT_CHAR_NAMES[char])
    return " ".join(names)


def format_of_value(value: object) -> TypeSpec:
    """Infer the most specific :class:`TypeSpec` for a Python value.

    Used by the self-describing ``a`` encoding and by the dynamic capture
    path when a module does not declare parameter types.
    """
    # bool must be tested before int: bool is a subclass of int.
    if value is None:
        return ScalarType("n")
    if isinstance(value, bool):
        return ScalarType("b")
    if isinstance(value, int):
        return ScalarType("l")
    if isinstance(value, float):
        return ScalarType("F")
    if isinstance(value, str):
        return ScalarType("s")
    if isinstance(value, (bytes, bytearray)):
        return ScalarType("B")
    if isinstance(value, list):
        if value:
            first = format_of_value(value[0])
            if all(format_of_value(v) == first for v in value[1:]):
                return ListType(first)
        return ListType(ScalarType("a"))
    if isinstance(value, tuple):
        return TupleType(tuple(format_of_value(v) for v in value))
    if isinstance(value, dict):
        if value:
            key_specs = {format_of_value(k) for k in value}
            val_specs = {format_of_value(v) for v in value.values()}
            key = key_specs.pop() if len(key_specs) == 1 else ScalarType("a")
            val = val_specs.pop() if len(val_specs) == 1 else ScalarType("a")
            return DictType(key, val)
        return DictType(ScalarType("a"), ScalarType("a"))
    # Symbolic pointers are detected structurally to avoid a circular import.
    if type(value).__name__ == "SymbolicPointer":
        return ScalarType("p")
    raise FormatError(f"cannot infer abstract type for {type(value).__name__}")


# ---------------------------------------------------------------------------
# Compiled matchers
#
# ``value_matches`` used to re-dispatch on the TypeSpec class and re-branch
# on the scalar char for every value of every frame of every capture — a
# measurable cost on the reconfiguration critical path (and on every bus
# message, via ``check_arity``).  Each spec now compiles once into a flat
# closure; compiled matchers are cached per spec and bundled per format
# string, mirroring the compiled encoder plans in ``repro.state.encoding``.
# ---------------------------------------------------------------------------

_Matcher = Callable[[object], bool]


def _match_any(value: object) -> bool:
    if value is None:
        return True
    try:
        format_of_value(value)
    except FormatError:
        return False
    return True


def _build_matcher(spec: TypeSpec) -> _Matcher:
    if isinstance(spec, ScalarType):
        ch = spec.char
        if ch == "a":
            return _match_any
        if ch == "n":
            return lambda value: value is None
        if ch == "b":
            return lambda value: value is None or isinstance(value, bool)
        if ch in ("i", "l"):
            return lambda value: value is None or (
                isinstance(value, int) and not isinstance(value, bool)
            )
        if ch in ("f", "F"):
            return lambda value: value is None or (
                isinstance(value, (int, float)) and not isinstance(value, bool)
            )
        if ch == "s":
            return lambda value: value is None or isinstance(value, str)
        if ch == "B":
            return lambda value: value is None or isinstance(value, (bytes, bytearray))
        if ch == "p":
            return lambda value: value is None or type(value).__name__ == "SymbolicPointer"
        return lambda value: value is None  # pragma: no cover - closed set
    if isinstance(spec, ListType):
        element = compiled_matcher(spec.element)
        return lambda value: value is None or (
            isinstance(value, list) and all(element(v) for v in value)
        )
    if isinstance(spec, TupleType):
        elements = tuple(compiled_matcher(e) for e in spec.elements)
        arity = len(elements)
        return lambda value: value is None or (
            isinstance(value, tuple)
            and len(value) == arity
            and all(m(v) for m, v in zip(elements, value))
        )
    if isinstance(spec, DictType):
        key = compiled_matcher(spec.key)
        val = compiled_matcher(spec.value)
        return lambda value: value is None or (
            isinstance(value, dict)
            and all(key(k) and val(v) for k, v in value.items())
        )
    return lambda value: value is None  # pragma: no cover - parser is closed


#: Compiled matcher per distinct spec.  TypeSpec hashes by format_char, so
#: structurally equal specs share one closure.  Plain dict (no lock): a
#: racing rebuild just produces an equivalent closure.
_MATCHER_CACHE: Dict[TypeSpec, _Matcher] = {}


def compiled_matcher(spec: TypeSpec) -> _Matcher:
    """The compiled form of :func:`value_matches` for one spec."""
    matcher = _MATCHER_CACHE.get(spec)
    if matcher is None:
        matcher = _build_matcher(spec)
        _MATCHER_CACHE[spec] = matcher
    return matcher


@lru_cache(maxsize=4096)
def matcher_plan(fmt: str) -> Tuple[_Matcher, ...]:
    """One compiled matcher per top-level spec of ``fmt``, parse-cached."""
    return tuple(compiled_matcher(spec) for spec in _parse_format_cached(fmt))


def value_matches(spec: TypeSpec, value: object) -> bool:
    """Return True when ``value`` is acceptable for ``spec``.

    The check is used both by capture (fail fast with a clear error rather
    than emit a corrupt abstract state) and by interface pattern checking
    on the software bus.

    ``None`` is acceptable for *every* format: a pre-initialised local that
    has not been assigned yet is captured as NULL, exactly as an
    uninitialised C variable occupies its declared slot.  The canonical
    encoding is self-describing, so a NULL travels as the ``n`` tag and
    restores as ``None`` regardless of the declared format.
    """
    return compiled_matcher(spec)(value)


def check_arity(fmt: str, values: Sequence[object]) -> List[TypeSpec]:
    """Parse ``fmt`` and verify it matches ``values`` element-wise.

    Returns the parsed specs.  Raises :class:`FormatError` on arity or
    type mismatch; the error message names the failing position, which is
    surfaced verbatim by ``mh.capture`` so a module author can find the
    bad capture block.
    """
    specs = _parse_format_cached(fmt)
    if len(specs) != len(values):
        raise FormatError(
            f"format {fmt!r} declares {len(specs)} values but {len(values)} supplied"
        )
    plan = matcher_plan(fmt)
    for index, (matcher, value) in enumerate(zip(plan, values)):
        if not matcher(value):
            raise FormatError(
                f"value #{index} ({value!r}) does not match format "
                f"{specs[index].format_char()!r} in {fmt!r}"
            )
    return list(specs)


def iter_scalars(spec: TypeSpec) -> Iterator[ScalarType]:
    """Yield every scalar leaf of ``spec`` (used by width diagnostics)."""
    if isinstance(spec, ScalarType):
        yield spec
    elif isinstance(spec, ListType):
        yield from iter_scalars(spec.element)
    elif isinstance(spec, TupleType):
        for element in spec.elements:
            yield from iter_scalars(element)
    elif isinstance(spec, DictType):
        yield from iter_scalars(spec.key)
        yield from iter_scalars(spec.value)
