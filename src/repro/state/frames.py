"""Activation records, stack state, and the whole abstract process state.

Paper Section 1.2 enumerates what a process state contains.  This module
gives each item a concrete, machine-independent representation:

- static data            -> :attr:`ProcessState.statics`
- dynamic data (AR stack)-> :class:`StackState` of :class:`ActivationRecord`
- user-allocated heap    -> :attr:`ProcessState.heap` (see ``state.heap``)
- program counter / call
  and return information -> *not stored*: encoded implicitly as resume
  *locations* inside each record, exactly as in the paper ("the module
  thread is captured and restored without explicit reference to the
  program counter or to any of the call/return information")

The serialized form (:meth:`ProcessState.to_bytes`) is the packet that
``mh_objstate_move`` ships between the old and new module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DecodingError, EncodingError
from repro.state.encoding import Decoder, Encoder
from repro.state.format import ScalarType, check_arity
from repro.state.machine import MachineProfile

#: Magic prefix of a serialized process state packet.
STATE_MAGIC = b"MHST"
#: Version of the packet layout; bumped on incompatible change.
STATE_VERSION = 1


@dataclass
class ActivationRecord:
    """The abstract image of one stack frame.

    ``location`` is the integer resume label (the paper's first captured
    value, "an integer 1, 2, 3, or 4 ... marking the statement where
    execution should resume"); ``fmt``/``values`` are the frame's captured
    locals in declaration order; ``procedure`` names the function for
    diagnostics and for the restore-time sanity check that the rebuilt
    call chain matches the captured one.
    """

    procedure: str
    location: int
    fmt: str
    values: List[object] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_arity(self.fmt, self.values)

    def encode_into(self, encoder: Encoder) -> None:
        encoder.write(ScalarType("s"), self.procedure)
        encoder.write(ScalarType("l"), self.location)
        encoder.write(ScalarType("s"), self.fmt)
        for spec, value in zip(check_arity(self.fmt, self.values), self.values):
            encoder.write(spec, value)

    @classmethod
    def decode_from(cls, decoder: Decoder) -> "ActivationRecord":
        procedure = decoder.read()
        location = decoder.read()
        fmt = decoder.read()
        if not isinstance(procedure, str) or not isinstance(fmt, str):
            raise DecodingError("corrupt activation record header")
        if not isinstance(location, int):
            raise DecodingError("corrupt activation record location")
        from repro.state.format import parse_format

        values = [decoder.read() for _ in parse_format(fmt)]
        return cls(procedure=procedure, location=location, fmt=fmt, values=values)


class StackState:
    """The captured activation-record stack.

    Records are stored in *capture order*: the topmost frame (the one
    containing the reconfiguration point) first, ``main`` last — that is
    the order the paper's capture blocks emit them as each ``return`` pops
    a frame.  Restoration consumes them in the opposite order
    (:meth:`pop_for_restore` yields ``main`` first), mirroring how the
    restore blocks rebuild the stack by re-executing calls downward.
    """

    def __init__(self, records: Optional[Sequence[ActivationRecord]] = None):
        self._records: List[ActivationRecord] = list(records or [])

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StackState) and self._records == other._records

    def records(self) -> List[ActivationRecord]:
        return list(self._records)

    @property
    def depth(self) -> int:
        return len(self._records)

    def push_captured(self, record: ActivationRecord) -> None:
        """Append a frame during capture (top of stack arrives first)."""
        self._records.append(record)

    def pop_for_restore(self) -> ActivationRecord:
        """Remove and return the next frame to restore (outermost first)."""
        if not self._records:
            raise DecodingError("restore consumed more frames than captured")
        return self._records.pop()

    def peek_for_restore(self) -> Optional[ActivationRecord]:
        return self._records[-1] if self._records else None

    def call_chain(self) -> List[str]:
        """Procedure names from ``main`` down to the reconfiguration point."""
        return [record.procedure for record in reversed(self._records)]


@dataclass
class ProcessState:
    """Everything a clone needs to resume the original module's thread.

    ``status`` mirrors the paper's module STATUS attribute: a freshly
    created replacement carries ``"clone"`` so its restore prologue fires
    (Figure 4: ``if (strcmp(mh_getstatus(),"clone")==0)``).
    """

    module: str
    stack: StackState = field(default_factory=StackState)
    statics: Dict[str, object] = field(default_factory=dict)
    heap: Dict[str, object] = field(default_factory=dict)
    reconfig_point: str = ""
    source_machine: str = ""
    status: str = "clone"

    # -- serialization ----------------------------------------------------------

    def to_bytes(self, machine: Optional[MachineProfile] = None) -> bytes:
        """Serialize to the canonical packet moved by ``objstate_move``."""
        encoder = Encoder(machine)
        encoder.write(ScalarType("s"), self.module)
        encoder.write(ScalarType("s"), self.status)
        encoder.write(ScalarType("s"), self.reconfig_point)
        encoder.write(ScalarType("s"), self.source_machine)
        encoder.write(ScalarType("a"), dict(self.statics))
        encoder.write(ScalarType("a"), dict(self.heap))
        encoder.write(ScalarType("l"), len(self.stack))
        for record in self.stack:
            record.encode_into(encoder)
        body = encoder.getvalue()
        header = STATE_MAGIC + bytes([STATE_VERSION])
        return header + len(body).to_bytes(4, "big") + body

    @classmethod
    def from_bytes(
        cls, data: bytes, machine: Optional[MachineProfile] = None
    ) -> "ProcessState":
        """Parse a packet produced by :meth:`to_bytes`.

        ``machine`` is the *target* machine profile; representability of
        every value is checked as it decodes.
        """
        if len(data) < len(STATE_MAGIC) + 5:
            raise DecodingError("process state packet too short")
        if data[: len(STATE_MAGIC)] != STATE_MAGIC:
            raise DecodingError("bad process state magic")
        version = data[len(STATE_MAGIC)]
        if version != STATE_VERSION:
            raise DecodingError(f"unsupported process state version {version}")
        offset = len(STATE_MAGIC) + 1
        length = int.from_bytes(data[offset : offset + 4], "big")
        body = data[offset + 4 :]
        if len(body) != length:
            raise DecodingError(
                f"process state length mismatch: header says {length}, "
                f"packet has {len(body)}"
            )
        decoder = Decoder(body, machine)
        module = decoder.read()
        status = decoder.read()
        reconfig_point = decoder.read()
        source_machine = decoder.read()
        statics = decoder.read()
        heap = decoder.read()
        frame_count = decoder.read()
        for name, value in (("module", module), ("status", status)):
            if not isinstance(value, str):
                raise DecodingError(f"corrupt process state field {name!r}")
        if not isinstance(frame_count, int) or frame_count < 0:
            raise DecodingError("corrupt frame count in process state")
        records = [ActivationRecord.decode_from(decoder) for _ in range(frame_count)]
        if not decoder.at_end():
            raise DecodingError(
                f"{decoder.remaining} trailing bytes in process state packet"
            )
        return cls(
            module=module,  # type: ignore[arg-type]
            stack=StackState(records),
            statics=dict(statics),  # type: ignore[arg-type]
            heap=dict(heap),  # type: ignore[arg-type]
            reconfig_point=str(reconfig_point),
            source_machine=str(source_machine),
            status=status,  # type: ignore[arg-type]
        )

    # -- convenience ---------------------------------------------------------------

    def summary(self) -> str:
        """One-line description used in logs and reconfiguration traces."""
        chain = " -> ".join(self.stack.call_chain()) or "(empty)"
        return (
            f"ProcessState(module={self.module!r}, point={self.reconfig_point!r}, "
            f"depth={self.stack.depth}, chain={chain})"
        )

    def translate(
        self,
        source: Optional[MachineProfile],
        target: Optional[MachineProfile],
    ) -> "ProcessState":
        """Round-trip through the canonical encoding between two machines.

        This is exactly what a cross-machine move does; exposing it as a
        method lets tests and the heterogeneity benchmark (D5) exercise
        the translation without a running bus.
        """
        return ProcessState.from_bytes(self.to_bytes(source), target)


def frames_equal_ignoring_order_metadata(
    left: StackState, right: StackState
) -> bool:
    """Structural equality helper used by property tests."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if (a.procedure, a.location, a.fmt, a.values) != (
            b.procedure,
            b.location,
            b.fmt,
            b.values,
        ):
            return False
    return True
