"""Activation records, stack state, and the whole abstract process state.

Paper Section 1.2 enumerates what a process state contains.  This module
gives each item a concrete, machine-independent representation:

- static data            -> :attr:`ProcessState.statics`
- dynamic data (AR stack)-> :class:`StackState` of :class:`ActivationRecord`
- user-allocated heap    -> :attr:`ProcessState.heap` (see ``state.heap``)
- program counter / call
  and return information -> *not stored*: encoded implicitly as resume
  *locations* inside each record, exactly as in the paper ("the module
  thread is captured and restored without explicit reference to the
  program counter or to any of the call/return information")

The serialized form (:meth:`ProcessState.to_bytes`) is the packet that
``mh_objstate_move`` ships between the old and new module.

Critical-path layout (see ``docs/state-encoding.md``): serialization
appends every field and frame into **one** ``bytearray`` through compiled
encoder plans; deserialization reads header fields from a ``memoryview``
of the packet body and leaves the frames as an undecoded byte region that
:class:`StackState` materialises on first access.  Callers that only need
identity or depth — the coordinator recording ``stack_depth``, trace
lines, queue accounting — use :func:`peek_state_header` and never decode
a frame at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import DecodingError, EncodingError
from repro.state.encoding import (
    Decoder,
    Encoder,
    _append_varint,
    _checks_of,
    _read_checked,
    compiled_encoder,
    encoder_plan,
    read_value,
    skip_value,
)
from repro.state.format import ScalarType, check_arity, parse_format
from repro.state.machine import MachineProfile

#: Magic prefix of a serialized process state packet.
STATE_MAGIC = b"MHST"
#: Version of the packet layout; bumped on incompatible change.
STATE_VERSION = 1

#: ``len(STATE_MAGIC) + 1`` (version byte) — start of the body-length word.
_LEN_OFFSET = len(STATE_MAGIC) + 1
#: Full fixed-header size: magic + version + 4-byte body length.
_BODY_OFFSET = _LEN_OFFSET + 4

#: Compiled self-describing encoder, used for the statics/heap dicts.
_ENC_ANY = compiled_encoder(ScalarType("a"))


def _append_str(buf: bytearray, value: object) -> None:
    # The 's' wire form, inlined for the packet header fields (a NULL
    # field travels as the 'n' tag, as everywhere in the encoding).
    if isinstance(value, str):
        data = value.encode("utf-8")
        buf.append(0x73)
        _append_varint(buf, len(data))
        buf.extend(data)
    elif value is None:
        buf.append(0x6E)
    else:
        raise EncodingError(f"format 's' requires str, got {value!r}")


@dataclass
class ActivationRecord:
    """The abstract image of one stack frame.

    ``location`` is the integer resume label (the paper's first captured
    value, "an integer 1, 2, 3, or 4 ... marking the statement where
    execution should resume"); ``fmt``/``values`` are the frame's captured
    locals in declaration order; ``procedure`` names the function for
    diagnostics and for the restore-time sanity check that the rebuilt
    call chain matches the captured one.
    """

    procedure: str
    location: int
    fmt: str
    values: List[object] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_arity(self.fmt, self.values)

    def encode_into_buffer(
        self, buf: bytearray, machine: Optional[MachineProfile], checks=None
    ) -> None:
        """Append this frame's wire form; the capture/encode hot path.

        ``checks`` is the machine's resolved check suite when the caller
        already holds it (``ProcessState.to_bytes`` resolves once for the
        whole packet); otherwise it is derived from ``machine``.
        """
        if checks is None and machine is not None:
            checks = _checks_of(machine)
        _append_str(buf, self.procedure)
        buf.append(0x6C)  # 'l'
        _append_varint(
            buf,
            self.location * 2 if self.location >= 0 else -self.location * 2 - 1,
        )
        _append_str(buf, self.fmt)
        plan = encoder_plan(self.fmt)
        values = self.values
        if len(plan) != len(values):
            check_arity(self.fmt, values)  # raises the arity FormatError
        try:
            for encode, value in zip(plan, values):
                encode(buf, value, checks)
        except EncodingError:
            # Values mutated since construction: surface the same
            # position-naming FormatError the eager walk raised.
            check_arity(self.fmt, values)
            raise

    def encode_into(self, encoder: Encoder) -> None:
        self.encode_into_buffer(encoder._buffer, encoder.machine)

    @classmethod
    def decode_from(cls, decoder: Decoder) -> "ActivationRecord":
        procedure = decoder.read()
        location = decoder.read()
        fmt = decoder.read()
        if not isinstance(procedure, str) or not isinstance(fmt, str):
            raise DecodingError("corrupt activation record header")
        if not isinstance(location, int):
            raise DecodingError("corrupt activation record location")
        values = [decoder.read() for _ in parse_format(fmt)]
        return cls(procedure=procedure, location=location, fmt=fmt, values=values)


class StackState:
    """The captured activation-record stack.

    Records are stored in *capture order*: the topmost frame (the one
    containing the reconfiguration point) first, ``main`` last — that is
    the order the paper's capture blocks emit them as each ``return`` pops
    a frame.  Restoration consumes them in the opposite order
    (:meth:`pop_for_restore` yields ``main`` first), mirroring how the
    restore blocks rebuild the stack by re-executing calls downward.

    A stack parsed from a packet starts **lazy**: :attr:`depth` comes from
    the packet's frame count and the records stay an undecoded byte region
    until something touches a frame.  Restoration pops the *last* wire
    frame first, so frames cannot stream one at a time — the first touch
    decodes them all.  Depth-only consumers never pay for a decode.
    """

    def __init__(self, records: Optional[Sequence[ActivationRecord]] = None):
        self._records: List[ActivationRecord] = list(records or [])
        self._pending = 0
        self._materializer: Optional[Callable[[], List[ActivationRecord]]] = None

    @classmethod
    def lazy(
        cls, count: int, materializer: Callable[[], List[ActivationRecord]]
    ) -> "StackState":
        """A stack of ``count`` frames decoded on first record access."""
        stack = cls()
        stack._pending = count
        stack._materializer = materializer
        return stack

    def _ensure(self) -> None:
        if self._materializer is not None:
            materializer, self._materializer = self._materializer, None
            self._pending = 0
            self._records.extend(materializer())

    def materialize(self) -> "StackState":
        """Force-decode any pending frames (validating them); returns self."""
        self._ensure()
        return self

    def __len__(self) -> int:
        return len(self._records) + self._pending

    def __iter__(self):
        self._ensure()
        return iter(self._records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StackState):
            return False
        self._ensure()
        other._ensure()
        return self._records == other._records

    def records(self) -> List[ActivationRecord]:
        self._ensure()
        return list(self._records)

    @property
    def depth(self) -> int:
        return len(self._records) + self._pending

    def push_captured(self, record: ActivationRecord) -> None:
        """Append a frame during capture (top of stack arrives first)."""
        self._ensure()
        self._records.append(record)

    def pop_for_restore(self) -> ActivationRecord:
        """Remove and return the next frame to restore (outermost first)."""
        self._ensure()
        if not self._records:
            raise DecodingError("restore consumed more frames than captured")
        return self._records.pop()

    def peek_for_restore(self) -> Optional[ActivationRecord]:
        self._ensure()
        return self._records[-1] if self._records else None

    def call_chain(self) -> List[str]:
        """Procedure names from ``main`` down to the reconfiguration point."""
        self._ensure()
        return [record.procedure for record in reversed(self._records)]


@dataclass(frozen=True)
class StateHeader:
    """The peekable prefix of a process-state packet.

    Everything the coordinator's bookkeeping needs — identity, origin and
    stack depth — without decoding a single activation record.  ``depth``
    sits *after* the statics and heap values on the wire; they are skipped
    structurally (:func:`repro.state.encoding.skip_value`), never decoded.
    """

    module: str
    status: str
    reconfig_point: str
    source_machine: str
    depth: int
    body_length: int
    packet_length: int


def _check_packet_framing(data) -> int:
    """Validate magic/version/length; return the body length."""
    if len(data) < _LEN_OFFSET + 4:
        raise DecodingError("process state packet too short")
    if bytes(data[: len(STATE_MAGIC)]) != STATE_MAGIC:
        raise DecodingError("bad process state magic")
    version = data[len(STATE_MAGIC)]
    if version != STATE_VERSION:
        raise DecodingError(f"unsupported process state version {version}")
    length = int.from_bytes(data[_LEN_OFFSET:_BODY_OFFSET], "big")
    if len(data) - _BODY_OFFSET != length:
        raise DecodingError(
            f"process state length mismatch: header says {length}, "
            f"packet has {len(data) - _BODY_OFFSET}"
        )
    return length


def _read_str_field(buf, pos: int, end: int, name: str) -> Tuple[str, int]:
    value, pos = read_value(buf, pos, end)
    if not isinstance(value, str):
        raise DecodingError(f"corrupt process state field {name!r}")
    return value, pos


def peek_state_header(data) -> StateHeader:
    """Read a packet's identity and stack depth without decoding frames.

    Cost is the four header strings plus a structural skip over the
    statics and heap — proportional to the packet prefix, independent of
    the stack depth and of how much state each activation record carries.
    The coordinator uses this to record ``stack_depth`` off the critical
    path (it used to pay a full ``from_bytes`` for that one integer).
    """
    length = _check_packet_framing(data)
    buf = memoryview(data)[_BODY_OFFSET:]
    end = len(buf)
    pos = 0
    module, pos = _read_str_field(buf, pos, end, "module")
    status, pos = _read_str_field(buf, pos, end, "status")
    reconfig_point, pos = _read_str_field(buf, pos, end, "reconfig_point")
    source_machine, pos = _read_str_field(buf, pos, end, "source_machine")
    pos = skip_value(buf, pos, end)  # statics
    pos = skip_value(buf, pos, end)  # heap
    frame_count, pos = read_value(buf, pos, end)
    if not isinstance(frame_count, int) or frame_count < 0:
        raise DecodingError("corrupt frame count in process state")
    return StateHeader(
        module=module,
        status=status,
        reconfig_point=reconfig_point,
        source_machine=source_machine,
        depth=frame_count,
        body_length=length,
        packet_length=len(data),
    )


@dataclass
class ProcessState:
    """Everything a clone needs to resume the original module's thread.

    ``status`` mirrors the paper's module STATUS attribute: a freshly
    created replacement carries ``"clone"`` so its restore prologue fires
    (Figure 4: ``if (strcmp(mh_getstatus(),"clone")==0)``).
    """

    module: str
    stack: StackState = field(default_factory=StackState)
    statics: Dict[str, object] = field(default_factory=dict)
    heap: Dict[str, object] = field(default_factory=dict)
    reconfig_point: str = ""
    source_machine: str = ""
    status: str = "clone"

    # -- serialization ----------------------------------------------------------

    def to_bytes(self, machine: Optional[MachineProfile] = None) -> bytes:
        """Serialize to the canonical packet moved by ``objstate_move``.

        One ``bytearray`` end to end: the fixed header goes in first with
        a placeholder length word, the body is appended through compiled
        encoder plans, and the length is patched in place — no per-frame
        Encoder objects, no header+body concatenation copy.
        """
        checks = None if machine is None else _checks_of(machine)
        buf = bytearray(STATE_MAGIC)
        buf.append(STATE_VERSION)
        buf.extend(b"\x00\x00\x00\x00")  # length word, patched below
        _append_str(buf, self.module)
        _append_str(buf, self.status)
        _append_str(buf, self.reconfig_point)
        _append_str(buf, self.source_machine)
        _ENC_ANY(buf, dict(self.statics), checks)
        _ENC_ANY(buf, dict(self.heap), checks)
        buf.append(0x6C)  # 'l'
        _append_varint(buf, len(self.stack) * 2)  # zigzag of a non-negative
        for record in self.stack:
            record.encode_into_buffer(buf, machine, checks)
        body_length = len(buf) - _BODY_OFFSET
        buf[_LEN_OFFSET:_BODY_OFFSET] = body_length.to_bytes(4, "big")
        return bytes(buf)

    @classmethod
    def from_bytes(
        cls, data: bytes, machine: Optional[MachineProfile] = None
    ) -> "ProcessState":
        """Parse a packet produced by :meth:`to_bytes`.

        ``machine`` is the *target* machine profile; representability of
        every value is checked as it decodes.  Header fields, statics and
        heap decode immediately — off a ``memoryview``, so the body is
        never copied out of the packet — while activation records stay an
        undecoded region until first access (see :class:`StackState`).
        Callers that need the target-machine check to cover the frames
        *now* (module restore does, before installing any state) call
        ``state.stack.materialize()``.
        """
        _check_packet_framing(data)
        buf = memoryview(data)[_BODY_OFFSET:]
        end = len(buf)
        pos = 0
        module, pos = _read_str_field(buf, pos, end, "module")
        status, pos = _read_str_field(buf, pos, end, "status")
        reconfig_point, pos = read_value(buf, pos, end)
        source_machine, pos = read_value(buf, pos, end)
        statics, pos = read_value(buf, pos, end, machine)
        heap, pos = read_value(buf, pos, end, machine)
        frame_count, pos = read_value(buf, pos, end)
        if not isinstance(statics, dict) or not isinstance(heap, dict):
            raise DecodingError("corrupt statics/heap in process state")
        if not isinstance(frame_count, int) or frame_count < 0:
            raise DecodingError("corrupt frame count in process state")

        frame_region_start = pos

        def materialize_frames() -> List[ActivationRecord]:
            checks = None if machine is None else _checks_of(machine)
            records = []
            fpos = frame_region_start
            for _ in range(frame_count):
                procedure, fpos = _read_checked(buf, fpos, end, None)
                location, fpos = _read_checked(buf, fpos, end, None)
                fmt, fpos = _read_checked(buf, fpos, end, None)
                if not isinstance(procedure, str) or not isinstance(fmt, str):
                    raise DecodingError("corrupt activation record header")
                if not isinstance(location, int):
                    raise DecodingError("corrupt activation record location")
                values = []
                for _ in parse_format(fmt):
                    value, fpos = _read_checked(buf, fpos, end, checks)
                    values.append(value)
                # Trusted construction: the values just came off the
                # self-describing wire under this fmt's arity, so the
                # dataclass __post_init__ re-validation is skipped.
                record = ActivationRecord.__new__(ActivationRecord)
                record.procedure = procedure
                record.location = location
                record.fmt = fmt
                record.values = values
                records.append(record)
            if fpos < end:
                raise DecodingError(
                    f"{end - fpos} trailing bytes in process state packet"
                )
            return records

        return cls(
            module=module,
            stack=StackState.lazy(frame_count, materialize_frames),
            statics=statics,
            heap=heap,
            reconfig_point=str(reconfig_point),
            source_machine=str(source_machine),
            status=status,
        )

    # -- convenience ---------------------------------------------------------------

    def summary(self) -> str:
        """One-line description used in logs and reconfiguration traces."""
        chain = " -> ".join(self.stack.call_chain()) or "(empty)"
        return (
            f"ProcessState(module={self.module!r}, point={self.reconfig_point!r}, "
            f"depth={self.stack.depth}, chain={chain})"
        )

    def translate(
        self,
        source: Optional[MachineProfile],
        target: Optional[MachineProfile],
    ) -> "ProcessState":
        """Round-trip through the canonical encoding between two machines.

        This is exactly what a cross-machine move does; exposing it as a
        method lets tests and the heterogeneity benchmark (D5) exercise
        the translation without a running bus.  The result is fully
        materialised: a translation that merely deferred the target
        machine's representability check would not be a translation.
        """
        state = ProcessState.from_bytes(self.to_bytes(source), target)
        state.stack.materialize()
        return state


def frames_equal_ignoring_order_metadata(
    left: StackState, right: StackState
) -> bool:
    """Structural equality helper used by property tests."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if (a.procedure, a.location, a.fmt, a.values) != (
            b.procedure,
            b.location,
            b.fmt,
            b.values,
        ):
            return False
    return True
