"""Reference (pre-compilation) codec — the executable wire specification.

This is the original tree-walking implementation of the canonical
encoding, preserved verbatim when :mod:`repro.state.encoding` moved to
compiled per-spec plans.  It exists for two reasons:

1. **Golden-bytes testing.**  Byte-identical wire output is a hard
   constraint of the fast path (cross-architecture translation must be
   unaffected), and the clearest way to pin that is an executable spec:
   ``tests/state/test_golden_bytes.py`` asserts the compiled encoder
   produces exactly these bytes for every format char and for whole
   process-state packets.
2. **Benchmark baseline.**  ``benchmarks/bench_a5_state_path.py`` measures
   the compiled path against this implementation live, so the recorded
   speedups are same-container comparisons rather than stale constants.

Do not "fix" or optimise this module; its only job is to stay equal to
the seed semantics.  (The one deliberate divergence of the live codec —
rejecting non-numeric values under ``'f'``/``'F'`` instead of silently
coercing through ``float()`` — is documented where the live codec does
it; this reference keeps the old coercion so the divergence is testable.)
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from repro.errors import DecodingError, EncodingError
from repro.state.format import (
    DictType,
    ListType,
    ScalarType,
    TupleType,
    TypeSpec,
    check_arity,
    format_of_value,
)
from repro.state.machine import MachineProfile


def _zigzag_big(n: int) -> int:
    return n * 2 if n >= 0 else -n * 2 - 1


def _unzigzag(z: int) -> int:
    return (z >> 1) if z % 2 == 0 else -((z + 1) >> 1)


class ReferenceEncoder:
    """The seed ``Encoder``: per-value tree walk with isinstance dispatch."""

    def __init__(self, machine: Optional[MachineProfile] = None):
        self.machine = machine
        self._buffer = bytearray()

    def getvalue(self) -> bytes:
        return bytes(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def _write_varint(self, n: int) -> None:
        if n < 0:
            raise EncodingError("varint must be non-negative")
        while True:
            byte = n & 0x7F
            n >>= 7
            if n:
                self._buffer.append(byte | 0x80)
            else:
                self._buffer.append(byte)
                return

    def _write_signed(self, n: int) -> None:
        self._write_varint(_zigzag_big(n))

    def write(self, spec: TypeSpec, value: object) -> None:
        if value is None and not (isinstance(spec, ScalarType) and spec.char == "a"):
            self._buffer.append(ord("n"))
            return
        if isinstance(spec, ScalarType):
            self._write_scalar(spec, value)
        elif isinstance(spec, ListType):
            if not isinstance(value, list):
                raise EncodingError(f"expected list, got {type(value).__name__}")
            self._buffer.append(ord("["))
            self._write_varint(len(value))
            for item in value:
                self.write(spec.element, item)
        elif isinstance(spec, TupleType):
            if not isinstance(value, tuple) or len(value) != len(spec.elements):
                raise EncodingError(f"expected {len(spec.elements)}-tuple, got {value!r}")
            self._buffer.append(ord("("))
            self._write_varint(len(value))
            for element, item in zip(spec.elements, value):
                self.write(element, item)
        elif isinstance(spec, DictType):
            if not isinstance(value, dict):
                raise EncodingError(f"expected dict, got {type(value).__name__}")
            self._buffer.append(ord("{"))
            self._write_varint(len(value))
            for key, item in value.items():
                self.write(spec.key, key)
                self.write(spec.value, item)
        else:  # pragma: no cover - parser produces only the above
            raise EncodingError(f"unknown type spec {spec!r}")

    def _write_scalar(self, spec: ScalarType, value: object) -> None:
        char = spec.char
        if char == "a":
            self.write(format_of_value(value), value)
            return
        if self.machine is not None:
            self.machine.check_representable(spec, value)
        if char == "n":
            if value is not None:
                raise EncodingError(f"format 'n' requires None, got {value!r}")
            self._buffer.append(ord("n"))
        elif char == "b":
            if not isinstance(value, bool):
                raise EncodingError(f"format 'b' requires bool, got {value!r}")
            self._buffer.append(ord("b"))
            self._buffer.append(1 if value else 0)
        elif char in ("i", "l"):
            if not isinstance(value, int) or isinstance(value, bool):
                raise EncodingError(f"format {char!r} requires int, got {value!r}")
            self._buffer.append(ord(char))
            self._write_signed(value)
        elif char == "f":
            self._buffer.append(ord("f"))
            self._buffer.extend(struct.pack(">f", float(value)))  # type: ignore[arg-type]
        elif char == "F":
            self._buffer.append(ord("F"))
            self._buffer.extend(struct.pack(">d", float(value)))  # type: ignore[arg-type]
        elif char == "s":
            if not isinstance(value, str):
                raise EncodingError(f"format 's' requires str, got {value!r}")
            data = value.encode("utf-8")
            self._buffer.append(ord("s"))
            self._write_varint(len(data))
            self._buffer.extend(data)
        elif char == "B":
            if not isinstance(value, (bytes, bytearray)):
                raise EncodingError(f"format 'B' requires bytes, got {value!r}")
            self._buffer.append(ord("B"))
            self._write_varint(len(value))
            self._buffer.extend(value)
        elif char == "p":
            segment, index = _pointer_parts(value)
            data = segment.encode("utf-8")
            self._buffer.append(ord("p"))
            self._write_varint(len(data))
            self._buffer.extend(data)
            self._write_signed(index)
        else:  # pragma: no cover - SCALAR_CHARS is closed
            raise EncodingError(f"unknown scalar format {char!r}")


def _pointer_parts(value: object) -> Tuple[str, int]:
    segment = getattr(value, "segment", None)
    index = getattr(value, "index", None)
    if not isinstance(segment, str) or not isinstance(index, int):
        raise EncodingError(f"format 'p' requires SymbolicPointer, got {value!r}")
    return segment, index


class ReferenceDecoder:
    """The seed ``Decoder``: bytes-slicing streaming reads."""

    def __init__(self, data: bytes, machine: Optional[MachineProfile] = None):
        self._data = data
        self._pos = 0
        self.machine = machine

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise DecodingError(
                f"truncated abstract state: need {count} bytes at offset "
                f"{self._pos}, have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def _read_varint(self) -> int:
        shift = 0
        result = 0
        while True:
            byte = self._take(1)[0]
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 10_000:  # defensive: corrupt stream
                raise DecodingError("runaway varint in abstract state")

    def _read_signed(self) -> int:
        return _unzigzag(self._read_varint())

    def read(self) -> object:
        tag = chr(self._take(1)[0])
        if tag == "n":
            return None
        if tag == "b":
            return self._take(1)[0] != 0
        if tag in ("i", "l"):
            value = self._read_signed()
            if self.machine is not None:
                self.machine.check_representable(ScalarType(tag), value)
            return value
        if tag == "f":
            return struct.unpack(">f", self._take(4))[0]
        if tag == "F":
            value = struct.unpack(">d", self._take(8))[0]
            if self.machine is not None:
                self.machine.check_representable(ScalarType("F"), value)
            return value
        if tag == "s":
            length = self._read_varint()
            return self._take(length).decode("utf-8")
        if tag == "B":
            length = self._read_varint()
            return self._take(length)
        if tag == "p":
            length = self._read_varint()
            segment = self._take(length).decode("utf-8")
            index = self._read_signed()
            from repro.state.pointers import SymbolicPointer

            return SymbolicPointer(segment, index)
        if tag == "[":
            count = self._read_varint()
            return [self.read() for _ in range(count)]
        if tag == "(":
            count = self._read_varint()
            return tuple(self.read() for _ in range(count))
        if tag == "{":
            count = self._read_varint()
            result = {}
            for _ in range(count):
                key = self.read()
                result[key] = self.read()
            return result
        raise DecodingError(f"unknown tag {tag!r} at offset {self._pos - 1}")

    def read_all(self) -> List[object]:
        values: List[object] = []
        while not self.at_end():
            values.append(self.read())
        return values


def reference_encode_values(
    fmt: str, values: Sequence[object], machine: Optional[MachineProfile] = None
) -> bytes:
    """The seed ``encode_values``: validate, then tree-walk encode."""
    specs = check_arity(fmt, values)
    encoder = ReferenceEncoder(machine)
    for spec, value in zip(specs, values):
        encoder.write(spec, value)
    return encoder.getvalue()


def reference_decode_values(
    data: bytes, machine: Optional[MachineProfile] = None
) -> List[object]:
    return ReferenceDecoder(data, machine).read_all()


def reference_encode_any(
    value: object, machine: Optional[MachineProfile] = None
) -> bytes:
    encoder = ReferenceEncoder(machine)
    encoder.write(ScalarType("a"), value)
    return encoder.getvalue()


def reference_state_to_bytes(state, machine=None) -> bytes:
    """The seed ``ProcessState.to_bytes`` walk, against any ProcessState."""
    from repro.state.frames import STATE_MAGIC, STATE_VERSION

    encoder = ReferenceEncoder(machine)
    encoder.write(ScalarType("s"), state.module)
    encoder.write(ScalarType("s"), state.status)
    encoder.write(ScalarType("s"), state.reconfig_point)
    encoder.write(ScalarType("s"), state.source_machine)
    encoder.write(ScalarType("a"), dict(state.statics))
    encoder.write(ScalarType("a"), dict(state.heap))
    encoder.write(ScalarType("l"), len(state.stack))
    for record in state.stack:
        encoder.write(ScalarType("s"), record.procedure)
        encoder.write(ScalarType("l"), record.location)
        encoder.write(ScalarType("s"), record.fmt)
        for spec, value in zip(check_arity(record.fmt, record.values), record.values):
            encoder.write(spec, value)
    body = encoder.getvalue()
    header = STATE_MAGIC + bytes([STATE_VERSION])
    return header + len(body).to_bytes(4, "big") + body


def reference_state_from_bytes(data: bytes, machine=None):
    """The seed ``ProcessState.from_bytes``: eager full decode."""
    from repro.state.format import parse_format
    from repro.state.frames import (
        STATE_MAGIC,
        STATE_VERSION,
        ActivationRecord,
        ProcessState,
        StackState,
    )

    if len(data) < len(STATE_MAGIC) + 5:
        raise DecodingError("process state packet too short")
    if data[: len(STATE_MAGIC)] != STATE_MAGIC:
        raise DecodingError("bad process state magic")
    version = data[len(STATE_MAGIC)]
    if version != STATE_VERSION:
        raise DecodingError(f"unsupported process state version {version}")
    offset = len(STATE_MAGIC) + 1
    length = int.from_bytes(data[offset : offset + 4], "big")
    body = data[offset + 4 :]
    if len(body) != length:
        raise DecodingError(
            f"process state length mismatch: header says {length}, "
            f"packet has {len(body)}"
        )
    decoder = ReferenceDecoder(bytes(body), machine)
    module = decoder.read()
    status = decoder.read()
    reconfig_point = decoder.read()
    source_machine = decoder.read()
    statics = decoder.read()
    heap = decoder.read()
    frame_count = decoder.read()
    for name, value in (("module", module), ("status", status)):
        if not isinstance(value, str):
            raise DecodingError(f"corrupt process state field {name!r}")
    if not isinstance(frame_count, int) or frame_count < 0:
        raise DecodingError("corrupt frame count in process state")
    records = []
    for _ in range(frame_count):
        procedure = decoder.read()
        location = decoder.read()
        fmt = decoder.read()
        if not isinstance(procedure, str) or not isinstance(fmt, str):
            raise DecodingError("corrupt activation record header")
        if not isinstance(location, int):
            raise DecodingError("corrupt activation record location")
        values = [decoder.read() for _ in parse_format(fmt)]
        records.append(
            ActivationRecord(
                procedure=procedure, location=location, fmt=fmt, values=values
            )
        )
    if not decoder.at_end():
        raise DecodingError(
            f"{decoder.remaining} trailing bytes in process state packet"
        )
    return ProcessState(
        module=module,  # type: ignore[arg-type]
        stack=StackState(records),
        statics=dict(statics),  # type: ignore[arg-type]
        heap=dict(heap),  # type: ignore[arg-type]
        reconfig_point=str(reconfig_point),
        source_machine=str(source_machine),
        status=status,  # type: ignore[arg-type]
    )
