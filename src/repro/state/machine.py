"""Simulated machine architectures for heterogeneous reconfiguration.

The paper moves modules "to different architectures" and argues that the
process state must therefore be captured in an abstract, machine-neutral
format.  We cannot attach real heterogeneous hardware to a test run, so we
simulate it (see DESIGN.md, substitutions): every simulated host carries a
:class:`MachineProfile` describing its byte order and native integer
widths.  State leaving a module is translated *native -> canonical* on the
source machine and *canonical -> native* on the target machine.

Two behaviours make the simulation meaningful rather than decorative:

1. ``pack_native`` produces a genuinely different byte image on machines
   with different endianness/word size, so tests can demonstrate that a raw
   memory copy would be wrong while the canonical path is right.
2. ``check_representable`` raises :class:`MachineCompatibilityError` when a
   value captured on a wide machine does not fit the target's native types
   — the real hazard of heterogeneous migration.
"""

from __future__ import annotations

import enum
import math
import struct
from dataclasses import dataclass
from typing import Dict

from repro.errors import EncodingError, MachineCompatibilityError
from repro.state.format import ScalarType, TypeSpec, iter_scalars


class Endianness(enum.Enum):
    """Byte order of a simulated machine."""

    LITTLE = "little"
    BIG = "big"

    @property
    def struct_prefix(self) -> str:
        return "<" if self is Endianness.LITTLE else ">"


@dataclass(frozen=True)
class MachineProfile:
    """Architecture description of a simulated host.

    ``int_bits``/``long_bits`` bound the native signed integer types used
    for format characters ``i``/``l``; ``float_bits`` selects the widest
    native float (32 means doubles are unavailable and ``F`` degrades to
    single precision on that machine, which ``check_representable``
    reports rather than silently truncating).
    """

    name: str
    endianness: Endianness
    int_bits: int = 32
    long_bits: int = 64
    float_bits: int = 64

    def __post_init__(self) -> None:
        if self.int_bits not in (16, 32, 64):
            raise ValueError(f"unsupported int width {self.int_bits}")
        if self.long_bits not in (32, 64):
            raise ValueError(f"unsupported long width {self.long_bits}")
        if self.long_bits < self.int_bits:
            raise ValueError("long must be at least as wide as int")
        if self.float_bits not in (32, 64):
            raise ValueError(f"unsupported float width {self.float_bits}")

    # -- integer ranges -----------------------------------------------------

    def int_range(self, char: str) -> range:
        """Native range of the integer type behind format char ``char``."""
        bits = self.int_bits if char == "i" else self.long_bits
        return range(-(1 << (bits - 1)), 1 << (bits - 1))

    # -- compiled codec checks ----------------------------------------------

    def codec_checks(self) -> tuple:
        """Per-char representability checks compiled for the codec hot path.

        Returns ``(check_i, check_l, check_F, check_other)`` where each
        entry is either ``None`` (this machine imposes no constraint on
        that char — the codec skips the call entirely) or a closure with
        the bounds and error strings pre-resolved.  The result is attached
        to the instance, so the cost is paid once per machine.

        This is the pluggable-hook boundary: a subclass that overrides
        :meth:`check_representable` gets shims that route every scalar
        through the override, so custom representability rules keep
        working and keep their own error messages.
        """
        checks = self.__dict__.get("_codec_checks")
        if checks is not None:
            return checks
        if type(self).check_representable is not MachineProfile.check_representable:

            def shim_for(spec: ScalarType):
                def shim(value, _spec=spec, _machine=self):
                    _machine.check_representable(_spec, value)

                return shim

            def shim_other(spec, value, _machine=self):
                _machine.check_representable(spec, value)

            checks = (
                shim_for(ScalarType("i")),
                shim_for(ScalarType("l")),
                shim_for(ScalarType("F")),
                shim_other,
            )
        else:
            checks = (
                self._compile_int_check("i"),
                self._compile_int_check("l"),
                self._compile_double_check(),
                None,
            )
        object.__setattr__(self, "_codec_checks", checks)
        return checks

    def _compile_int_check(self, char: str):
        bits = self.int_bits if char == "i" else self.long_bits
        lo = -(1 << (bits - 1))
        hi = (1 << (bits - 1)) - 1
        kind = "int" if char == "i" else "long"
        spec = ScalarType(char)

        def check_int(value, _self=self):
            if type(value) is int:
                if lo <= value <= hi:
                    return
                raise MachineCompatibilityError(
                    f"integer {value} does not fit a {bits}-bit "
                    f"native {kind} on machine {_self.name!r}"
                )
            # bool, containers, foreign types: the generic walk decides.
            _self.check_representable(spec, value)

        return check_int

    def _compile_double_check(self):
        if self.float_bits != 32:
            return None
        spec = ScalarType("F")

        def check_double(value, _self=self):
            if type(value) is float:
                narrowed = struct.unpack("<f", struct.pack("<f", value))[0]
                if narrowed != value and not (
                    math.isnan(value) and math.isnan(narrowed)
                ):
                    raise MachineCompatibilityError(
                        f"double {value!r} is not representable on "
                        f"32-bit-float machine {_self.name!r}"
                    )
                return
            _self.check_representable(spec, value)

        return check_double

    # -- representability ---------------------------------------------------

    def check_representable(self, spec: TypeSpec, value: object) -> None:
        """Raise unless ``value`` fits this machine's native types.

        Called on the *target* machine during restore (and on the source
        machine during capture, so errors surface where the programmer can
        see the original value).
        """
        for scalar in iter_scalars(spec):
            self._check_scalar(scalar, value)

    def _check_scalar(self, scalar: ScalarType, value: object) -> None:
        # Structured values are validated leaf-wise by the encoder; here we
        # only need range checks, so walk containers recursively.
        if isinstance(value, (list, tuple)):
            for item in value:
                self._check_scalar(scalar, item)
            return
        if isinstance(value, dict):
            for key, item in value.items():
                self._check_scalar(scalar, key)
                self._check_scalar(scalar, item)
            return
        char = scalar.char
        if char in ("i", "l") and isinstance(value, int) and not isinstance(value, bool):
            rng = self.int_range(char)
            if value not in rng:
                raise MachineCompatibilityError(
                    f"integer {value} does not fit a "
                    f"{self.int_bits if char == 'i' else self.long_bits}-bit "
                    f"native {'int' if char == 'i' else 'long'} "
                    f"on machine {self.name!r}"
                )
        if char == "F" and self.float_bits == 32 and isinstance(value, float):
            narrowed = struct.unpack("<f", struct.pack("<f", value))[0]
            if narrowed != value and not (math.isnan(value) and math.isnan(narrowed)):
                raise MachineCompatibilityError(
                    f"double {value!r} is not representable on 32-bit-float "
                    f"machine {self.name!r}"
                )

    # -- native memory images -----------------------------------------------

    def pack_native(self, spec: ScalarType, value: object) -> bytes:
        """Produce the simulated *native* memory image of a scalar.

        This is what a raw (non-abstract) state copy would ship between
        machines; tests use it to show that the native images of the same
        abstract value differ across profiles.
        """
        prefix = self.endianness.struct_prefix
        char = spec.char
        if char == "b":
            return struct.pack(prefix + "B", 1 if value else 0)
        if char == "i":
            self._check_scalar(spec, value)
            code = {16: "h", 32: "i", 64: "q"}[self.int_bits]
            return struct.pack(prefix + code, value)
        if char == "l":
            self._check_scalar(spec, value)
            code = {32: "i", 64: "q"}[self.long_bits]
            return struct.pack(prefix + code, value)
        if char == "f":
            return struct.pack(prefix + "f", float(value))  # type: ignore[arg-type]
        if char == "F":
            code = "f" if self.float_bits == 32 else "d"
            return struct.pack(prefix + code, float(value))  # type: ignore[arg-type]
        if char == "s":
            return str(value).encode("utf-8")
        if char == "B":
            return bytes(value)  # type: ignore[arg-type]
        if char == "n":
            return b""
        raise EncodingError(f"no native image for format char {char!r}")

    def unpack_native(self, spec: ScalarType, image: bytes) -> object:
        """Inverse of :meth:`pack_native` for the same profile."""
        prefix = self.endianness.struct_prefix
        char = spec.char
        if char == "b":
            return struct.unpack(prefix + "B", image)[0] != 0
        if char == "i":
            code = {16: "h", 32: "i", 64: "q"}[self.int_bits]
            return struct.unpack(prefix + code, image)[0]
        if char == "l":
            code = {32: "i", 64: "q"}[self.long_bits]
            return struct.unpack(prefix + code, image)[0]
        if char == "f":
            return struct.unpack(prefix + "f", image)[0]
        if char == "F":
            code = "f" if self.float_bits == 32 else "d"
            return struct.unpack(prefix + code, image)[0]
        if char == "s":
            return image.decode("utf-8")
        if char == "B":
            return image
        if char == "n":
            return None
        raise EncodingError(f"no native image for format char {char!r}")

    def describe(self) -> str:
        """Human-readable one-line architecture description."""
        return (
            f"{self.name}: {self.endianness.value}-endian, "
            f"int{self.int_bits}/long{self.long_bits}/float{self.float_bits}"
        )

    def to_abstract(self) -> Dict[str, object]:
        """Plain-value form for crossing a process boundary (pipe or TCP)."""
        return {
            "name": self.name,
            "endianness": self.endianness.value,
            "int_bits": self.int_bits,
            "long_bits": self.long_bits,
            "float_bits": self.float_bits,
        }


def profile_from_abstract(value: Dict[str, object]) -> MachineProfile:
    """Rebuild a profile from :meth:`MachineProfile.to_abstract` output."""
    return MachineProfile(
        name=str(value["name"]),
        endianness=Endianness(str(value["endianness"])),
        int_bits=int(value["int_bits"]),  # type: ignore[call-overload]
        long_bits=int(value["long_bits"]),  # type: ignore[call-overload]
        float_bits=int(value["float_bits"]),  # type: ignore[call-overload]
    )


#: A small catalogue of simulated architectures used by examples and tests.
MACHINES: Dict[str, MachineProfile] = {
    "vax-like": MachineProfile("vax-like", Endianness.LITTLE, int_bits=32, long_bits=32),
    "sparc-like": MachineProfile("sparc-like", Endianness.BIG, int_bits=32, long_bits=64),
    "alpha-like": MachineProfile("alpha-like", Endianness.LITTLE, int_bits=64, long_bits=64),
    "m68k-like": MachineProfile(
        "m68k-like", Endianness.BIG, int_bits=16, long_bits=32, float_bits=32
    ),
    "modern-64": MachineProfile("modern-64", Endianness.LITTLE, int_bits=32, long_bits=64),
}
