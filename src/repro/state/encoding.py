"""Canonical byte-level encoding of abstract process state.

The paper requires that process state cross machines "in an abstract, not
machine-specific, format" (Section 1.2).  This module defines that format:
a tagged, big-endian (network order), self-describing encoding.  Integers
are arbitrary-precision varints in canonical form — width limits are a
property of *machines* (see :mod:`repro.state.machine`), not of the wire.

Wire grammar (one value)::

    value   := tag payload
    tag     := 1 byte, the ASCII format character ('i', 'F', '[', ...)
    payload := fixed per tag; containers carry a varint count then values

Self-description means the decoder never needs the format string; format
strings are used at capture time for validation (a typo'd capture block
fails loudly at the module, not mysteriously at the clone).

Implementation notes (the reconfiguration critical path, see
``docs/state-encoding.md``):

- **Compiled encoder plans.**  Each :class:`TypeSpec` compiles once into a
  flat closure that validates and appends in a single walk
  (:func:`compiled_encoder`); each format string compiles once into a
  tuple of those closures (:func:`encoder_plan`, lru-cached alongside
  format parsing).  The old ``Encoder.write`` re-dispatched on
  ``isinstance``/tag chars for every value of every frame.
- **Machine-representability stays a pluggable hook.**  Compiled closures
  take the machine's check suite as a call argument
  (``MachineProfile.codec_checks``: per-char closures with bounds and
  error strings pre-resolved; subclasses that override
  ``check_representable`` get shims that route every scalar through the
  override), so heterogeneity errors surface at capture time with
  identical messages and custom profiles keep working.
- **Zero-copy decode.**  The decode core (:func:`read_value`) is a
  position-passing function over any buffer (``bytes`` or ``memoryview``)
  with slice-free scalar reads (``struct.unpack_from``), so decoding a
  packet region never copies it out first.  :func:`skip_value` advances
  past a value without materialising it — that is what makes process-state
  headers peekable (:func:`repro.state.frames.peek_state_header`).

The naive tree-walk implementation this replaced is preserved verbatim in
:mod:`repro.state.reference` as the executable wire specification; a
golden-bytes test pins the compiled path to it byte-for-byte.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import DecodingError, EncodingError
from repro.state.format import (
    DictType,
    ListType,
    ScalarType,
    TupleType,
    TypeSpec,
    check_arity,
    format_of_value,
)
from repro.state.machine import MachineProfile


def _zigzag_big(n: int) -> int:
    # Arbitrary-precision zigzag: non-negative -> 2n, negative -> -2n - 1.
    return n * 2 if n >= 0 else -n * 2 - 1


def _unzigzag(z: int) -> int:
    return (z >> 1) if z % 2 == 0 else -((z + 1) >> 1)


_pack_f32 = struct.Struct(">f").pack
_pack_f64 = struct.Struct(">d").pack
_unpack_f32 = struct.Struct(">f").unpack_from
_unpack_f64 = struct.Struct(">d").unpack_from

def _append_varint(buf: bytearray, n: int) -> None:
    if n < 0:
        raise EncodingError("varint must be non-negative")
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def _append_signed(buf: bytearray, n: int) -> None:
    _append_varint(buf, n * 2 if n >= 0 else -n * 2 - 1)


def _pointer_parts(value: object) -> Tuple[str, int]:
    segment = getattr(value, "segment", None)
    index = getattr(value, "index", None)
    if not isinstance(segment, str) or not isinstance(index, int):
        raise EncodingError(f"format 'p' requires SymbolicPointer, got {value!r}")
    return segment, index


# ---------------------------------------------------------------------------
# Compiled encoders
# ---------------------------------------------------------------------------

#: An encoder closure: append the canonical form of ``value`` to ``buf``.
#: ``checks`` is a machine's compiled check suite (see
#: ``MachineProfile.codec_checks``), resolved once per encode call rather
#: than once per value, or None when no machine constraint applies.
_EncodeFn = Callable[[bytearray, object, Optional[tuple]], None]


def _checks_of(machine: MachineProfile) -> tuple:
    # The compiled (check_i, check_l, check_F, check_other) suite, attached
    # to the machine on first use — see MachineProfile.codec_checks.
    return machine.__dict__.get("_codec_checks") or machine.codec_checks()


def _build_scalar_encoder(spec: ScalarType) -> _EncodeFn:
    char = spec.char

    if char == "a":

        def enc_any(buf, value, checks):
            # Self-describing: infer the concrete spec and encode under it.
            compiled_encoder(format_of_value(value))(buf, value, checks)

        return enc_any

    if char == "n":

        def enc_none(buf, value, checks):
            if value is None:
                buf.append(0x6E)  # 'n'
                return
            if checks is not None and checks[3] is not None:
                checks[3](spec, value)
            raise EncodingError(f"format 'n' requires None, got {value!r}")

        return enc_none

    if char == "b":

        def enc_bool(buf, value, checks):
            if value is None:
                buf.append(0x6E)
                return
            if checks is not None and checks[3] is not None:
                checks[3](spec, value)
            if not isinstance(value, bool):
                raise EncodingError(f"format 'b' requires bool, got {value!r}")
            buf.append(0x62)  # 'b'
            buf.append(1 if value else 0)

        return enc_bool

    if char in ("i", "l"):
        tag = ord(char)
        check_index = 0 if char == "i" else 1

        def enc_int(buf, value, checks):
            if value is None:
                buf.append(0x6E)
                return
            if checks is not None:
                checks[check_index](value)
            if type(value) is not int and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise EncodingError(f"format {char!r} requires int, got {value!r}")
            buf.append(tag)
            n = value * 2 if value >= 0 else -value * 2 - 1
            while True:
                byte = n & 0x7F
                n >>= 7
                if n:
                    buf.append(byte | 0x80)
                else:
                    buf.append(byte)
                    return

        return enc_int

    if char in ("f", "F"):
        tag = ord(char)
        pack = _pack_f32 if char == "f" else _pack_f64
        is_double = char == "F"

        def enc_float(buf, value, checks):
            if value is None:
                buf.append(0x6E)
                return
            if checks is not None:
                if is_double:
                    if checks[2] is not None:
                        checks[2](value)
                elif checks[3] is not None:
                    checks[3](spec, value)
            if type(value) is not float and (
                not isinstance(value, (int, float)) or isinstance(value, bool)
            ):
                raise EncodingError(
                    f"format {char!r} requires int or float, got {value!r}"
                )
            buf.append(tag)
            buf.extend(pack(float(value)))

        return enc_float

    if char == "s":

        def enc_str(buf, value, checks):
            if value is None:
                buf.append(0x6E)
                return
            if checks is not None and checks[3] is not None:
                checks[3](spec, value)
            if not isinstance(value, str):
                raise EncodingError(f"format 's' requires str, got {value!r}")
            data = value.encode("utf-8")
            buf.append(0x73)  # 's'
            _append_varint(buf, len(data))
            buf.extend(data)

        return enc_str

    if char == "B":

        def enc_bytes(buf, value, checks):
            if value is None:
                buf.append(0x6E)
                return
            if checks is not None and checks[3] is not None:
                checks[3](spec, value)
            if not isinstance(value, (bytes, bytearray)):
                raise EncodingError(f"format 'B' requires bytes, got {value!r}")
            buf.append(0x42)  # 'B'
            _append_varint(buf, len(value))
            buf.extend(value)

        return enc_bytes

    if char == "p":

        def enc_pointer(buf, value, checks):
            if value is None:
                buf.append(0x6E)
                return
            if checks is not None and checks[3] is not None:
                checks[3](spec, value)
            segment, index = _pointer_parts(value)
            data = segment.encode("utf-8")
            buf.append(0x70)  # 'p'
            _append_varint(buf, len(data))
            buf.extend(data)
            _append_signed(buf, index)

        return enc_pointer

    raise EncodingError(f"unknown scalar format {char!r}")  # pragma: no cover


def _build_encoder(spec: TypeSpec) -> _EncodeFn:
    if isinstance(spec, ScalarType):
        return _build_scalar_encoder(spec)

    if isinstance(spec, ListType):
        enc_element = compiled_encoder(spec.element)

        def enc_list(buf, value, checks):
            if value is None:
                buf.append(0x6E)
                return
            if not isinstance(value, list):
                raise EncodingError(f"expected list, got {type(value).__name__}")
            buf.append(0x5B)  # '['
            _append_varint(buf, len(value))
            for item in value:
                enc_element(buf, item, checks)

        return enc_list

    if isinstance(spec, TupleType):
        elements = tuple(compiled_encoder(e) for e in spec.elements)
        arity = len(elements)

        def enc_tuple(buf, value, checks):
            if value is None:
                buf.append(0x6E)
                return
            if not isinstance(value, tuple) or len(value) != arity:
                raise EncodingError(f"expected {arity}-tuple, got {value!r}")
            buf.append(0x28)  # '('
            _append_varint(buf, arity)
            for enc_element, item in zip(elements, value):
                enc_element(buf, item, checks)

        return enc_tuple

    if isinstance(spec, DictType):
        enc_key = compiled_encoder(spec.key)
        enc_val = compiled_encoder(spec.value)

        def enc_dict(buf, value, checks):
            if value is None:
                buf.append(0x6E)
                return
            if not isinstance(value, dict):
                raise EncodingError(f"expected dict, got {type(value).__name__}")
            buf.append(0x7B)  # '{'
            _append_varint(buf, len(value))
            for key, item in value.items():
                enc_key(buf, key, checks)
                enc_val(buf, item, checks)

        return enc_dict

    raise EncodingError(f"unknown type spec {spec!r}")  # pragma: no cover


#: Compiled encoder per distinct spec (TypeSpec hashes by format_char, so
#: structurally equal specs share one closure).  Plain dict, no lock: a
#: racing rebuild just installs an equivalent closure.
_ENCODER_CACHE: Dict[TypeSpec, _EncodeFn] = {}


def compiled_encoder(spec: TypeSpec) -> _EncodeFn:
    """The compiled single-walk encoder for one spec."""
    encoder = _ENCODER_CACHE.get(spec)
    if encoder is None:
        encoder = _build_encoder(spec)
        _ENCODER_CACHE[spec] = encoder
    return encoder


def encoder_plan(fmt: str) -> Tuple[_EncodeFn, ...]:
    """One compiled encoder per top-level spec of ``fmt``.

    Cached per distinct format string (formats recur heavily: every frame
    of a deep capture reuses its procedure's format, every message on an
    interface reuses the declared pattern), sharing the lru-cached parse
    from :mod:`repro.state.format`.
    """
    plan = _PLAN_CACHE.get(fmt)
    if plan is None:
        from repro.state.format import parse_format

        plan = tuple(compiled_encoder(spec) for spec in parse_format(fmt))
        if len(_PLAN_CACHE) < 4096:
            _PLAN_CACHE[fmt] = plan
    return plan


_PLAN_CACHE: Dict[str, Tuple[_EncodeFn, ...]] = {}


class Encoder:
    """Append-only canonical encoder.

    When a :class:`MachineProfile` is supplied, every integer and double is
    checked for representability on that (source) machine before encoding,
    so heterogeneity errors surface at capture time with the live value in
    the message.

    ``write`` dispatches through the compiled per-spec closures, so the
    class costs nothing over :func:`encode_values`; it remains the
    convenient streaming API for callers that assemble a buffer piecewise.
    """

    def __init__(self, machine: Optional[MachineProfile] = None):
        self.machine = machine
        self._buffer = bytearray()

    def getvalue(self) -> bytes:
        return bytes(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    # -- primitives ----------------------------------------------------------

    def _write_varint(self, n: int) -> None:
        _append_varint(self._buffer, n)

    def _write_signed(self, n: int) -> None:
        self._write_varint(_zigzag_big(n))

    # -- values ---------------------------------------------------------------

    def write(self, spec: TypeSpec, value: object) -> None:
        """Encode one value under declaration ``spec``.

        ``None`` is encodable under every declaration (a NULL slot — see
        :func:`repro.state.format.value_matches`); it travels as the ``n``
        tag and decodes as ``None``.
        """
        compiled_encoder(spec)(
            self._buffer,
            value,
            None if self.machine is None else _checks_of(self.machine),
        )


# ---------------------------------------------------------------------------
# Decode core
# ---------------------------------------------------------------------------


def _truncated(pos: int, need: int, end: int) -> DecodingError:
    return DecodingError(
        f"truncated abstract state: need {need} bytes at offset "
        f"{pos}, have {end - pos}"
    )


def _read_varint(buf, pos: int, end: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= end:
            raise _truncated(pos, 1, end)
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 10_000:  # defensive: corrupt stream
            raise DecodingError("runaway varint in abstract state")


_SymbolicPointer = None


def _pointer_cls():
    # Imported lazily (and memoized) to avoid a circular import with
    # repro.state.pointers.
    global _SymbolicPointer
    if _SymbolicPointer is None:
        from repro.state.pointers import SymbolicPointer

        _SymbolicPointer = SymbolicPointer
    return _SymbolicPointer


def read_value(
    buf, pos: int, end: int, machine: Optional[MachineProfile] = None
) -> Tuple[object, int]:
    """Decode one self-described value from ``buf[pos:end]``.

    Returns ``(value, new_pos)``.  ``buf`` may be ``bytes`` or a
    ``memoryview`` — scalar payloads are read in place with
    ``struct.unpack_from`` and only string/bytes payloads materialise a
    copy (the decoded value itself).  When a :class:`MachineProfile` is
    supplied, decoded integers and doubles are checked against that
    (target) machine's native ranges — this is where a 2**40 captured on
    a 64-bit host fails to land on a simulated 32-bit host.
    """
    return _read_checked(
        buf, pos, end, None if machine is None else _checks_of(machine)
    )


def _read_checked(buf, pos: int, end: int, checks) -> Tuple[object, int]:
    # The decode core; ``checks`` is a machine's compiled check suite
    # (resolved once per top-level value, not once per scalar) or None.
    if pos >= end:
        raise _truncated(pos, 1, end)
    tag = buf[pos]
    pos += 1
    if tag == 0x6C or tag == 0x69:  # 'l' / 'i'
        z, pos = _read_varint(buf, pos, end)
        value = (z >> 1) if z % 2 == 0 else -((z + 1) >> 1)
        if checks is not None:
            checks[1 if tag == 0x6C else 0](value)
        return value, pos
    if tag == 0x46:  # 'F'
        if pos + 8 > end:
            raise _truncated(pos, 8, end)
        value = _unpack_f64(buf, pos)[0]
        if checks is not None:
            check = checks[2]
            if check is not None:
                check(value)
        return value, pos + 8
    if tag == 0x73:  # 's'
        length, pos = _read_varint(buf, pos, end)
        if pos + length > end:
            raise _truncated(pos, length, end)
        return str(buf[pos : pos + length], "utf-8"), pos + length
    if tag == 0x6E:  # 'n'
        return None, pos
    if tag == 0x62:  # 'b'
        if pos >= end:
            raise _truncated(pos, 1, end)
        return buf[pos] != 0, pos + 1
    if tag == 0x66:  # 'f'
        if pos + 4 > end:
            raise _truncated(pos, 4, end)
        return _unpack_f32(buf, pos)[0], pos + 4
    if tag == 0x42:  # 'B'
        length, pos = _read_varint(buf, pos, end)
        if pos + length > end:
            raise _truncated(pos, length, end)
        return bytes(buf[pos : pos + length]), pos + length
    if tag == 0x70:  # 'p'
        length, pos = _read_varint(buf, pos, end)
        if pos + length > end:
            raise _truncated(pos, length, end)
        segment = str(buf[pos : pos + length], "utf-8")
        pos += length
        z, pos = _read_varint(buf, pos, end)
        index = (z >> 1) if z % 2 == 0 else -((z + 1) >> 1)
        return _pointer_cls()(segment, index), pos
    if tag == 0x5B:  # '['
        count, pos = _read_varint(buf, pos, end)
        result = []
        for _ in range(count):
            item, pos = _read_checked(buf, pos, end, checks)
            result.append(item)
        return result, pos
    if tag == 0x28:  # '('
        count, pos = _read_varint(buf, pos, end)
        items = []
        for _ in range(count):
            item, pos = _read_checked(buf, pos, end, checks)
            items.append(item)
        return tuple(items), pos
    if tag == 0x7B:  # '{'
        count, pos = _read_varint(buf, pos, end)
        result = {}
        for _ in range(count):
            key, pos = _read_checked(buf, pos, end, checks)
            result[key], pos = _read_checked(buf, pos, end, checks)
        return result, pos
    raise DecodingError(f"unknown tag {chr(tag)!r} at offset {pos - 1}")


def skip_value(buf, pos: int, end: int) -> int:
    """Advance past one encoded value without materialising it.

    The cost is the structural walk only — string/bytes payloads are
    skipped by length, scalars by width.  This is what makes state-packet
    headers peekable: the coordinator can read the stack depth that sits
    *after* the statics and heap dicts without decoding either.
    """
    if pos >= end:
        raise _truncated(pos, 1, end)
    tag = buf[pos]
    pos += 1
    if tag == 0x6E:  # 'n'
        return pos
    if tag == 0x62:  # 'b'
        if pos >= end:
            raise _truncated(pos, 1, end)
        return pos + 1
    if tag == 0x6C or tag == 0x69:  # 'l' / 'i'
        _, pos = _read_varint(buf, pos, end)
        return pos
    if tag == 0x66:  # 'f'
        if pos + 4 > end:
            raise _truncated(pos, 4, end)
        return pos + 4
    if tag == 0x46:  # 'F'
        if pos + 8 > end:
            raise _truncated(pos, 8, end)
        return pos + 8
    if tag == 0x73 or tag == 0x42:  # 's' / 'B'
        length, pos = _read_varint(buf, pos, end)
        if pos + length > end:
            raise _truncated(pos, length, end)
        return pos + length
    if tag == 0x70:  # 'p'
        length, pos = _read_varint(buf, pos, end)
        if pos + length > end:
            raise _truncated(pos, length, end)
        _, pos = _read_varint(buf, pos + length, end)
        return pos
    if tag == 0x5B or tag == 0x28:  # '[' / '('
        count, pos = _read_varint(buf, pos, end)
        for _ in range(count):
            pos = skip_value(buf, pos, end)
        return pos
    if tag == 0x7B:  # '{'
        count, pos = _read_varint(buf, pos, end)
        for _ in range(count):
            pos = skip_value(buf, pos, end)
            pos = skip_value(buf, pos, end)
        return pos
    raise DecodingError(f"unknown tag {chr(tag)!r} at offset {pos - 1}")


class Decoder:
    """Streaming canonical decoder.

    A thin positional wrapper over :func:`read_value`; accepts ``bytes``
    or a ``memoryview`` (the zero-copy path used for process-state
    bodies).  When a :class:`MachineProfile` is supplied, decoded integers
    and doubles are checked against that (target) machine's native ranges.
    """

    def __init__(self, data, machine: Optional[MachineProfile] = None):
        self._data = data
        self._pos = 0
        self._end = len(data)
        self.machine = machine
        self._checks = None if machine is None else _checks_of(machine)

    @property
    def remaining(self) -> int:
        return self._end - self._pos

    def at_end(self) -> bool:
        return self._pos >= self._end

    def _take(self, count: int) -> bytes:
        if self._pos + count > self._end:
            raise _truncated(self._pos, count, self._end)
        chunk = bytes(self._data[self._pos : self._pos + count])
        self._pos += count
        return chunk

    def _read_varint(self) -> int:
        value, self._pos = _read_varint(self._data, self._pos, self._end)
        return value

    def _read_signed(self) -> int:
        return _unzigzag(self._read_varint())

    def read(self) -> object:
        """Decode one self-described value."""
        value, self._pos = _read_checked(
            self._data, self._pos, self._end, self._checks
        )
        return value

    def skip(self) -> None:
        """Advance past one value without materialising it."""
        self._pos = skip_value(self._data, self._pos, self._end)

    def read_all(self) -> List[object]:
        values: List[object] = []
        while not self.at_end():
            values.append(self.read())
        return values


def encode_values(
    fmt: str, values: Sequence[object], machine: Optional[MachineProfile] = None
) -> bytes:
    """Validate ``values`` against ``fmt`` and encode them canonically.

    This is the function behind ``mh.capture`` — the paper's
    ``mh_capture("llF", 1, n, response)`` becomes
    ``encode_values("llF", [1, n, response], machine)``.

    Validation and encoding are one compiled walk; when a value does not
    match its declaration, the slow-path re-check reproduces the exact
    :class:`FormatError` the naive implementation raised, naming the
    failing position.
    """
    plan = encoder_plan(fmt)
    if len(plan) != len(values):
        from repro.errors import FormatError

        raise FormatError(
            f"format {fmt!r} declares {len(plan)} values but {len(values)} supplied"
        )
    buf = bytearray()
    checks = None if machine is None else _checks_of(machine)
    try:
        for encode, value in zip(plan, values):
            encode(buf, value, checks)
    except EncodingError:
        # A declaration mismatch must surface as the position-naming
        # FormatError of the pre-compiled implementation; re-walk with the
        # full checker to distinguish it from a genuine encoding failure.
        check_arity(fmt, values)
        raise
    return bytes(buf)


def decode_values(
    data, machine: Optional[MachineProfile] = None
) -> List[object]:
    """Decode a canonical stream back into Python values."""
    values: List[object] = []
    pos = 0
    end = len(data)
    checks = None if machine is None else _checks_of(machine)
    while pos < end:
        value, pos = _read_checked(data, pos, end, checks)
        values.append(value)
    return values


def encode_any(value: object, machine: Optional[MachineProfile] = None) -> bytes:
    """Encode a single self-described value (format char ``a``)."""
    buf = bytearray()
    _ENC_ANY(buf, value, None if machine is None else _checks_of(machine))
    return bytes(buf)


def decode_any(data, machine: Optional[MachineProfile] = None) -> object:
    """Decode a single self-described value, requiring full consumption."""
    end = len(data)
    value, pos = read_value(data, 0, end, machine)
    if pos < end:
        raise DecodingError(f"{end - pos} trailing bytes after value")
    return value


_ENC_ANY = compiled_encoder(ScalarType("a"))
