"""Canonical byte-level encoding of abstract process state.

The paper requires that process state cross machines "in an abstract, not
machine-specific, format" (Section 1.2).  This module defines that format:
a tagged, big-endian (network order), self-describing encoding.  Integers
are arbitrary-precision varints in canonical form — width limits are a
property of *machines* (see :mod:`repro.state.machine`), not of the wire.

Wire grammar (one value)::

    value   := tag payload
    tag     := 1 byte, the ASCII format character ('i', 'F', '[', ...)
    payload := fixed per tag; containers carry a varint count then values

Self-description means the decoder never needs the format string; format
strings are used at capture time for validation (a typo'd capture block
fails loudly at the module, not mysteriously at the clone).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from repro.errors import DecodingError, EncodingError
from repro.state.format import (
    DictType,
    ListType,
    ScalarType,
    TupleType,
    TypeSpec,
    check_arity,
    format_of_value,
)
from repro.state.machine import MachineProfile


def _zigzag(n: int) -> int:
    return (n << 1) ^ (n >> 63) if -(1 << 63) <= n < (1 << 63) else _zigzag_big(n)


def _zigzag_big(n: int) -> int:
    # Arbitrary-precision zigzag: non-negative -> 2n, negative -> -2n - 1.
    return n * 2 if n >= 0 else -n * 2 - 1


def _unzigzag(z: int) -> int:
    return (z >> 1) if z % 2 == 0 else -((z + 1) >> 1)


class Encoder:
    """Append-only canonical encoder.

    When a :class:`MachineProfile` is supplied, every integer and double is
    checked for representability on that (source) machine before encoding,
    so heterogeneity errors surface at capture time with the live value in
    the message.
    """

    def __init__(self, machine: Optional[MachineProfile] = None):
        self.machine = machine
        self._buffer = bytearray()

    def getvalue(self) -> bytes:
        return bytes(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    # -- primitives ----------------------------------------------------------

    def _write_varint(self, n: int) -> None:
        if n < 0:
            raise EncodingError("varint must be non-negative")
        while True:
            byte = n & 0x7F
            n >>= 7
            if n:
                self._buffer.append(byte | 0x80)
            else:
                self._buffer.append(byte)
                return

    def _write_signed(self, n: int) -> None:
        self._write_varint(_zigzag_big(n))

    # -- values ---------------------------------------------------------------

    def write(self, spec: TypeSpec, value: object) -> None:
        """Encode one value under declaration ``spec``.

        ``None`` is encodable under every declaration (a NULL slot — see
        :func:`repro.state.format.value_matches`); it travels as the ``n``
        tag and decodes as ``None``.
        """
        if value is None and not (isinstance(spec, ScalarType) and spec.char == "a"):
            self._buffer.append(ord("n"))
            return
        if isinstance(spec, ScalarType):
            self._write_scalar(spec, value)
        elif isinstance(spec, ListType):
            if not isinstance(value, list):
                raise EncodingError(f"expected list, got {type(value).__name__}")
            self._buffer.append(ord("["))
            self._write_varint(len(value))
            for item in value:
                self.write(spec.element, item)
        elif isinstance(spec, TupleType):
            if not isinstance(value, tuple) or len(value) != len(spec.elements):
                raise EncodingError(f"expected {len(spec.elements)}-tuple, got {value!r}")
            self._buffer.append(ord("("))
            self._write_varint(len(value))
            for element, item in zip(spec.elements, value):
                self.write(element, item)
        elif isinstance(spec, DictType):
            if not isinstance(value, dict):
                raise EncodingError(f"expected dict, got {type(value).__name__}")
            self._buffer.append(ord("{"))
            self._write_varint(len(value))
            for key, item in value.items():
                self.write(spec.key, key)
                self.write(spec.value, item)
        else:  # pragma: no cover - parser produces only the above
            raise EncodingError(f"unknown type spec {spec!r}")

    def _write_scalar(self, spec: ScalarType, value: object) -> None:
        char = spec.char
        if char == "a":
            # Self-describing: infer the concrete spec and encode under it.
            self.write(format_of_value(value), value)
            return
        if self.machine is not None:
            self.machine.check_representable(spec, value)
        if char == "n":
            if value is not None:
                raise EncodingError(f"format 'n' requires None, got {value!r}")
            self._buffer.append(ord("n"))
        elif char == "b":
            if not isinstance(value, bool):
                raise EncodingError(f"format 'b' requires bool, got {value!r}")
            self._buffer.append(ord("b"))
            self._buffer.append(1 if value else 0)
        elif char in ("i", "l"):
            if not isinstance(value, int) or isinstance(value, bool):
                raise EncodingError(f"format {char!r} requires int, got {value!r}")
            self._buffer.append(ord(char))
            self._write_signed(value)
        elif char == "f":
            self._buffer.append(ord("f"))
            self._buffer.extend(struct.pack(">f", float(value)))  # type: ignore[arg-type]
        elif char == "F":
            self._buffer.append(ord("F"))
            self._buffer.extend(struct.pack(">d", float(value)))  # type: ignore[arg-type]
        elif char == "s":
            if not isinstance(value, str):
                raise EncodingError(f"format 's' requires str, got {value!r}")
            data = value.encode("utf-8")
            self._buffer.append(ord("s"))
            self._write_varint(len(data))
            self._buffer.extend(data)
        elif char == "B":
            if not isinstance(value, (bytes, bytearray)):
                raise EncodingError(f"format 'B' requires bytes, got {value!r}")
            self._buffer.append(ord("B"))
            self._write_varint(len(value))
            self._buffer.extend(value)
        elif char == "p":
            segment, index = _pointer_parts(value)
            data = segment.encode("utf-8")
            self._buffer.append(ord("p"))
            self._write_varint(len(data))
            self._buffer.extend(data)
            self._write_signed(index)
        else:  # pragma: no cover - SCALAR_CHARS is closed
            raise EncodingError(f"unknown scalar format {char!r}")


def _pointer_parts(value: object) -> Tuple[str, int]:
    segment = getattr(value, "segment", None)
    index = getattr(value, "index", None)
    if not isinstance(segment, str) or not isinstance(index, int):
        raise EncodingError(f"format 'p' requires SymbolicPointer, got {value!r}")
    return segment, index


class Decoder:
    """Streaming canonical decoder.

    When a :class:`MachineProfile` is supplied, decoded integers and
    doubles are checked against that (target) machine's native ranges —
    this is where a 2**40 captured on a 64-bit host fails to land on a
    simulated 32-bit host.
    """

    def __init__(self, data: bytes, machine: Optional[MachineProfile] = None):
        self._data = data
        self._pos = 0
        self.machine = machine

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise DecodingError(
                f"truncated abstract state: need {count} bytes at offset "
                f"{self._pos}, have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def _read_varint(self) -> int:
        shift = 0
        result = 0
        while True:
            byte = self._take(1)[0]
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 10_000:  # defensive: corrupt stream
                raise DecodingError("runaway varint in abstract state")

    def _read_signed(self) -> int:
        return _unzigzag(self._read_varint())

    def read(self) -> object:
        """Decode one self-described value."""
        tag = chr(self._take(1)[0])
        if tag == "n":
            return None
        if tag == "b":
            return self._take(1)[0] != 0
        if tag in ("i", "l"):
            value = self._read_signed()
            if self.machine is not None:
                self.machine.check_representable(ScalarType(tag), value)
            return value
        if tag == "f":
            return struct.unpack(">f", self._take(4))[0]
        if tag == "F":
            value = struct.unpack(">d", self._take(8))[0]
            if self.machine is not None:
                self.machine.check_representable(ScalarType("F"), value)
            return value
        if tag == "s":
            length = self._read_varint()
            return self._take(length).decode("utf-8")
        if tag == "B":
            length = self._read_varint()
            return self._take(length)
        if tag == "p":
            length = self._read_varint()
            segment = self._take(length).decode("utf-8")
            index = self._read_signed()
            from repro.state.pointers import SymbolicPointer

            return SymbolicPointer(segment, index)
        if tag == "[":
            count = self._read_varint()
            return [self.read() for _ in range(count)]
        if tag == "(":
            count = self._read_varint()
            return tuple(self.read() for _ in range(count))
        if tag == "{":
            count = self._read_varint()
            result = {}
            for _ in range(count):
                key = self.read()
                result[key] = self.read()
            return result
        raise DecodingError(f"unknown tag {tag!r} at offset {self._pos - 1}")

    def read_all(self) -> List[object]:
        values: List[object] = []
        while not self.at_end():
            values.append(self.read())
        return values


def encode_values(
    fmt: str, values: Sequence[object], machine: Optional[MachineProfile] = None
) -> bytes:
    """Validate ``values`` against ``fmt`` and encode them canonically.

    This is the function behind ``mh.capture`` — the paper's
    ``mh_capture("llF", 1, n, response)`` becomes
    ``encode_values("llF", [1, n, response], machine)``.
    """
    specs = check_arity(fmt, values)
    encoder = Encoder(machine)
    for spec, value in zip(specs, values):
        encoder.write(spec, value)
    return encoder.getvalue()


def decode_values(
    data: bytes, machine: Optional[MachineProfile] = None
) -> List[object]:
    """Decode a canonical stream back into Python values."""
    return Decoder(data, machine).read_all()


def encode_any(value: object, machine: Optional[MachineProfile] = None) -> bytes:
    """Encode a single self-described value (format char ``a``)."""
    encoder = Encoder(machine)
    encoder.write(ScalarType("a"), value)
    return encoder.getvalue()


def decode_any(data: bytes, machine: Optional[MachineProfile] = None) -> object:
    """Decode a single self-described value, requiring full consumption."""
    decoder = Decoder(data, machine)
    value = decoder.read()
    if not decoder.at_end():
        raise DecodingError(f"{decoder.remaining} trailing bytes after value")
    return value
