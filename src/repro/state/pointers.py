"""Symbolic pointer translation (paper Section 3, final paragraphs).

"Since pointers are addresses, they must be translated into an abstract
format for capture and restoration.  For example, a pointer variable
containing an explicit address would be translated into a variable that
points to the nth character of a string located at some symbolic address."

In this reproduction a pointer is abstracted as a *(segment, index)* pair:
``segment`` is a symbolic address — a static variable name, a heap object
id (``"heap:17"``), or an out-parameter cell id — and ``index`` an offset
into that object.  The :class:`PointerTable` assigns segments to live
objects at capture time and resolves them back at restore time.

Pointers *into the activation-record stack* never appear here: the paper's
insight (which we inherit) is that stack pointers are rebuilt for free by
re-executing the instrumented call chain, so only static/heap targets need
symbolic translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import PointerTranslationError


@dataclass(frozen=True)
class SymbolicPointer:
    """A machine-independent pointer: an offset into a named segment."""

    segment: str
    index: int = 0

    def with_offset(self, delta: int) -> "SymbolicPointer":
        """Pointer arithmetic in abstract space."""
        return SymbolicPointer(self.segment, self.index + delta)

    def __str__(self) -> str:
        return f"&{self.segment}[{self.index}]"


class PointerTable:
    """Bidirectional map between live objects and symbolic segments.

    Capture direction: :meth:`translate` interns an object and returns a
    :class:`SymbolicPointer` to it.  Restore direction: :meth:`bind`
    registers the recreated object for a segment and :meth:`resolve`
    dereferences symbolic pointers against those bindings.
    """

    def __init__(self, prefix: str = "obj"):
        self._prefix = prefix
        self._next_id = 0
        self._segments_by_identity: Dict[int, str] = {}
        self._objects_by_segment: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._objects_by_segment)

    def segments(self) -> Dict[str, object]:
        """Snapshot of segment -> object bindings (insertion-ordered)."""
        return dict(self._objects_by_segment)

    # -- capture side ----------------------------------------------------------

    def translate(self, target: object, index: int = 0) -> SymbolicPointer:
        """Return a symbolic pointer to ``target``, interning it if new.

        The same live object always maps to the same segment, so aliasing
        (two pointers to one object) survives the abstract round trip.
        """
        key = id(target)
        segment = self._segments_by_identity.get(key)
        if segment is None:
            segment = f"{self._prefix}:{self._next_id}"
            self._next_id += 1
            self._segments_by_identity[key] = segment
            self._objects_by_segment[segment] = target
        return SymbolicPointer(segment, index)

    def translate_named(self, name: str, target: object, index: int = 0) -> SymbolicPointer:
        """Intern ``target`` under an explicit symbolic name.

        Used for static variables, whose symbolic address is simply their
        source-level name.
        """
        existing = self._objects_by_segment.get(name)
        if existing is not None and existing is not target:
            raise PointerTranslationError(
                f"segment {name!r} already bound to a different object"
            )
        self._segments_by_identity[id(target)] = name
        self._objects_by_segment[name] = target
        return SymbolicPointer(name, index)

    # -- restore side ------------------------------------------------------------

    def bind(self, segment: str, target: object) -> None:
        """Register the recreated object standing for ``segment``."""
        self._objects_by_segment[segment] = target
        self._segments_by_identity[id(target)] = segment

    def resolve(self, pointer: SymbolicPointer) -> object:
        """Dereference a symbolic pointer to its (recreated) object."""
        try:
            return self._objects_by_segment[pointer.segment]
        except KeyError:
            raise PointerTranslationError(
                f"unresolved symbolic pointer {pointer}: segment not bound"
            ) from None

    def resolve_indexed(self, pointer: SymbolicPointer) -> object:
        """Dereference and index — the paper's "nth character of a string"."""
        target = self.resolve(pointer)
        if pointer.index == 0:
            return target
        try:
            return target[pointer.index :]  # type: ignore[index]
        except TypeError:
            raise PointerTranslationError(
                f"segment {pointer.segment!r} of type "
                f"{type(target).__name__} is not indexable"
            ) from None

    def clear(self) -> None:
        self._segments_by_identity.clear()
        self._objects_by_segment.clear()
        self._next_id = 0
