#!/usr/bin/env python
"""Live software maintenance: upgrade a module without stopping the app.

The paper's first motivation for dynamic reconfiguration is "to perform
software maintenance" on "very long-running applications or those that
must be continuously available".

A conversion pipeline (producer -> worker -> sink) runs with a *buggy*
worker v1 (Fahrenheit = C*2 + 32).  We replace it mid-stream with the
fixed v2 (C*9/5 + 32): every reading is converted exactly once, the cut
from old to new formula is clean, and the worker's running counter —
part of its captured state — survives the upgrade.

Run:  python examples/live_upgrade.py
"""

import time

from repro import SoftwareBus, upgrade_module
from repro.apps.pipeline import (
    WORKER_V2_SOURCE,
    build_pipeline_configuration,
    v1_formula,
    v2_formula,
)
from repro.state.machine import MACHINES


def main():
    config = build_pipeline_configuration(count=30, interval=0.04)
    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("prod-host", MACHINES["modern-64"])
    bus.launch(config, default_host="prod-host")

    def sink_values():
        return bus.get_module("sink").mh.statics.get("values", [])

    while len(sink_values()) < 5:
        bus.check_health()
        time.sleep(0.01)
    print(f"v1 (buggy) output so far: {sink_values()}")

    print("\nupgrading worker to v2 WITHOUT stopping the pipeline ...")
    report = upgrade_module(bus, "worker", WORKER_V2_SOURCE, timeout=15)
    print(report.describe())

    while len(sink_values()) < 30:
        bus.check_health()
        time.sleep(0.01)
    values = sink_values()
    count = bus.get_module("worker").mh.statics.get("count")
    bus.shutdown()

    cut = next(
        k
        for k in range(31)
        if values[:k] == [v1_formula(c) for c in range(k)]
        and values[k:] == [v2_formula(c) for c in range(k, 30)]
    )
    print(f"\nreadings 0..{cut - 1} used the old formula,"
          f" {cut}..29 the fixed one — no reading lost or double-converted.")
    print(f"worker's running count carried across the upgrade: {count} == 30")
    assert count == 30
    print("OK — maintenance performed on a continuously available application.")


if __name__ == "__main__":
    main()
