#!/usr/bin/env python
"""Quickstart: launch the Monitor application and move a module, live.

This is the paper's headline scenario in ~40 lines of user code:

1. parse a Figure-2-style configuration (MIL),
2. launch the application on a software bus with two simulated machines
   of *different architectures*,
3. while it runs, move the ``compute`` module — mid-recursive-call —
   from one machine to the other,
4. watch the displayed averages continue without a gap.

Run:  python examples/quickstart.py
"""

import time

from repro import SoftwareBus, move_module
from repro.apps import build_monitor_configuration
from repro.state.machine import MACHINES


def displayed(bus):
    return bus.get_module("display").mh.statics.get("displayed", [])


def main():
    # Figure 2's configuration, paced so the demo finishes in seconds.
    config = build_monitor_configuration(
        requests=24, group_size=4, interval=0.05, discard=False
    )
    config.modules["sensor"].attributes["interval"] = "0.005"

    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("alpha", MACHINES["sparc-like"])  # big-endian, 32-bit ints
    bus.add_host("beta", MACHINES["vax-like"])  # little-endian, 32-bit longs
    bus.launch(config, default_host="alpha")
    print("before:", bus.snapshot_configuration().describe(), sep="\n")

    # Let a few averages flow...
    while len(displayed(bus)) < 4:
        bus.check_health()
        time.sleep(0.01)
    print(f"\n... {len(displayed(bus))} averages displayed; moving compute ...\n")

    # ... then move compute while it is executing.
    report = move_module(bus, "compute", machine="beta", timeout=15)
    print(report.describe())

    while len(displayed(bus)) < 24:
        bus.check_health()
        time.sleep(0.01)
    values = displayed(bus)
    bus.shutdown()

    print("\nafter:", f"compute now runs on {report.new_machine}")
    print(f"all 24 averages, none lost: {values}")
    expected = [2.5 + 4 * k for k in range(24)]
    assert values == expected, "continuity violated!"
    print("OK — the module moved mid-recursion with exact continuity.")


if __name__ == "__main__":
    main()
