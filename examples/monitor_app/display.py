def main():
    total = int(mh.config.get('requests', '6'))
    group = int(mh.config.get('group_size', '4'))
    interval = float(mh.config.get('interval', '2'))
    displayed = []
    mh.statics['displayed'] = displayed
    mh.init()
    while mh.running and len(displayed) < total:
        mh.write('temper', 'i', group)
        value = mh.read1('temper')
        displayed.append(value)
        mh.sleep(interval)
    mh.statics['done'] = True
    while mh.running:
        mh.sleep(1)
