def main():
    t = int(mh.config.get('start', '1'))
    limit = int(mh.config.get('limit', '1000000000'))
    interval = float(mh.config.get('interval', '1'))
    mh.init()
    while mh.running and t <= limit:
        mh.write('out', 'i', t)
        t = t + 1
        mh.sleep(interval)
    while mh.running:
        mh.sleep(1)
