def main():
    n = None
    idle = float(mh.config.get('idle_interval', '2'))
    response: Ref = None
    mh.init()
    while mh.running:
        while mh.query_ifmsgs('display'):
            n = mh.read1('display')
            response = Ref(0.0)
            compute(n, n, response)
            mh.write('display', 'F', response.get())
        if mh.query_ifmsgs('sensor'):
            compute(1, 1, Ref(0.0))
        mh.sleep(idle)


def compute(num: int, n: int, rp: Ref):
    """Recursively average n temperatures into *rp (Figure 3)."""
    temper = None
    if n <= 0:
        rp.set(0.0)
        return
    compute(num, n - 1, rp)
    mh.reconfig_point('R')
    temper = mh.read1('sensor')
    rp.set(rp.get() + float(temper) / float(num))
