#!/usr/bin/env python
"""Heterogeneous migration: why the abstract state format exists.

Paper Section 1.2: process state must be captured "in an abstract, not
machine-specific, format" because the same value occupies different
native memory images on different architectures.

This example:

1. shows the *native* memory image of one value on four simulated
   architectures (they all differ — a raw copy would corrupt state),
2. captures the compute module mid-recursion on a big-endian 32-bit
   machine and restores it on a little-endian 64-bit machine,
3. demonstrates the platform *refusing* an unrepresentable migration
   (a 2^40 long moving to a machine with 32-bit native longs) instead
   of silently truncating.

Run:  python examples/heterogeneous_migration.py
"""

from repro.core import prepare_module
from repro.runtime.mh import MH, ModuleStop, SleepPolicy
from repro.runtime.refs import Ref
from repro.state.format import ScalarType
from repro.state.frames import ProcessState
from repro.state.machine import MACHINES
from repro.apps.monitor import COMPUTE_SOURCE
from repro.errors import MachineCompatibilityError


class Port:
    def __init__(self, mh, queues, reconfig_after=None, stop_after_write=False):
        self.mh = mh
        self.queues = {k: list(v) for k, v in queues.items()}
        self.out = []
        self.reads = 0
        self.reconfig_after = reconfig_after
        self.stop_after_write = stop_after_write

    def read(self, interface, timeout, stop_event):
        value = self.queues[interface].pop(0)
        self.reads += 1
        if self.reads == self.reconfig_after:
            self.mh.request_reconfig()
        return [value]

    def write(self, interface, fmt, values):
        self.out.append((interface, values))
        if self.stop_after_write:
            self.mh.stop()

    def query_ifmsgs(self, interface):
        return bool(self.queues.get(interface))


def main():
    print("native memory images of int 2026 (format char 'i'):")
    for name, profile in MACHINES.items():
        image = profile.pack_native(ScalarType("i"), 2026)
        print(f"  {profile.describe():48s} -> {image.hex()}")
    print("  ^ a raw state copy between any two of these is wrong;")
    print("    the canonical abstract encoding is machine-independent.\n")

    result = prepare_module(COMPUTE_SOURCE, "compute")
    code = compile(result.source, "<compute>", "exec")

    source_machine = MACHINES["sparc-like"]
    target_machine = MACHINES["alpha-like"]

    # Capture mid-recursion on the big-endian machine.
    mh = MH("compute", source_machine)
    mh.config["idle_interval"] = "0"
    port = Port(mh, {"display": [4], "sensor": [10, 20, 30, 40]}, reconfig_after=3)
    mh.attach_port(port)
    namespace = {"mh": mh, "Ref": Ref}
    exec(code, namespace)
    namespace["main"]()
    packet = mh.outgoing_packet
    state = ProcessState.from_bytes(packet)
    print(f"captured on {source_machine.describe()}:")
    print(f"  {state.summary()}")
    print(f"  abstract packet: {len(packet)} bytes (canonical, tagged)\n")

    # Restore on the little-endian 64-bit machine.
    clone = MH("compute", target_machine, status="clone",
               sleep_policy=SleepPolicy(0.0))
    clone.config["idle_interval"] = "0"
    clone.incoming_packet = packet
    clone_port = Port(clone, {"display": [], "sensor": [30, 40]},
                      stop_after_write=True)
    clone.attach_port(clone_port)
    namespace2 = {"mh": clone, "Ref": Ref}
    exec(code, namespace2)
    try:
        namespace2["main"]()
    except ModuleStop:
        pass
    print(f"restored on {target_machine.describe()}:")
    print(f"  resumed mid-recursion, answer = {clone_port.out[0][1][0]} "
          f"(exact: (10+20+30+40)/4 = 25.0)\n")

    # And the failure path: an unrepresentable value refuses to migrate.
    wide = MH("counter", MACHINES["alpha-like"])  # 64-bit native longs
    wide.begin_reconfig_capture("P")
    wide.capture("main", "ll", 1, 2**40)
    wide_packet = wide.encode()
    narrow = MH("counter", MACHINES["vax-like"], status="clone")  # 32-bit longs
    narrow.incoming_packet = wide_packet
    try:
        narrow.decode()
    except MachineCompatibilityError as error:
        print("unrepresentable migration correctly refused:")
        print(f"  {error}")
    else:
        raise AssertionError("expected a MachineCompatibilityError")


if __name__ == "__main__":
    main()
