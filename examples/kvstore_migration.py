#!/usr/bin/env python
"""Migrating a stateful service: a key-value shard moves machines, live.

Unlike the Monitor example (whose crucial state is the activation-record
stack), the shard's state is *heap-resident*: the store dict plus a
request counter in statics.  The move must carry all of it — and any
requests queued at the instant of the move — without the client
noticing anything beyond a small latency blip.

Run:  python examples/kvstore_migration.py
"""

import time

from repro import SoftwareBus, move_module
from repro.apps.kvstore import build_kvstore_configuration, expected_replies
from repro.state.machine import MACHINES


def main():
    puts = 12
    config = build_kvstore_configuration(puts=puts, interval=0.04)
    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("alpha", MACHINES["sparc-like"])
    bus.add_host("beta", MACHINES["alpha-like"])
    bus.launch(config, default_host="alpha")

    def replies():
        return bus.get_module("client").mh.statics.get("replies", [])

    while len(replies()) < 6:
        bus.check_health()
        time.sleep(0.01)
    print(f"{len(replies())} replies served from alpha; migrating shard ...")

    report = move_module(bus, "shard", machine="beta", timeout=15)
    print(report.describe())

    while len(replies()) < 2 * puts:
        bus.check_health()
        time.sleep(0.01)

    shard = bus.get_module("shard")
    print(f"\nstore after migration ({shard.host.name}): {shard.mh.heap['store']}")
    print(f"requests served across both incarnations: {shard.mh.statics['serves']}")
    assert replies() == expected_replies(puts)
    assert shard.mh.statics["serves"] == 2 * puts
    bus.shutdown()
    print("OK — heap state, statics, and queued requests all survived.")


if __name__ == "__main__":
    main()
