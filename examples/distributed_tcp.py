#!/usr/bin/env python
"""Distributed operation: real OS processes, state over a real socket.

Every simulated machine is its own Python process (a machine daemon)
connected to a central bus over TCP.  The monitor application is placed
entirely on machine ``alpha``; the compute module is then moved to
machine ``beta`` — its captured activation-record stack crosses the
network as canonical abstract bytes and is decoded by a process with a
*different* simulated architecture.

Run:  python examples/distributed_tcp.py
"""

import time

from repro.apps import build_monitor_configuration
from repro.bus.tcp import DistributedBus


def main():
    config = build_monitor_configuration(
        requests=24, group_size=4, interval=0.03, discard=False
    )
    config.modules["sensor"].attributes["interval"] = "0.002"

    bus = DistributedBus(sleep_scale=1.0)
    print("spawning machine daemons (separate OS processes) ...")
    bus.spawn_machine("alpha", "sparc-like")
    bus.spawn_machine("beta", "vax-like")
    for line in bus.trace:
        print(f"  {line}")

    bus.launch(
        config,
        placement={"display": "alpha", "compute": "alpha", "sensor": "alpha"},
    )

    def displayed():
        return bus.statics_of("display").get("displayed", [])

    while len(displayed()) < 4:
        time.sleep(0.02)
    print(f"\n{len(displayed())} averages displayed; moving compute over TCP ...")

    report = bus.move_module("compute", "beta", timeout=20)
    print(f"  state packet: {report['packet_bytes']} bytes over the wire")
    print(f"  delay to reconfiguration point: "
          f"{report['delay_to_point_s'] * 1000:.1f} ms")
    print(f"  total move time: {report['total_s'] * 1000:.1f} ms")

    while len(displayed()) < 24:
        time.sleep(0.02)
    values = displayed()
    bus.shutdown()

    expected = [2.5 + 4 * k for k in range(24)]
    assert values == expected, (values, expected)
    print(f"\nall 24 averages exact across the cross-process move:")
    print(f"  {values}")
    print(f"compute now runs in the beta daemon process.")


if __name__ == "__main__":
    main()
