#!/usr/bin/env python
"""The evolving philosophers problem — live change in a running dinner.

Kramer & Magee's canonical change-management scenario (the paper's
reference [6]): dining philosophers whose membership changes while the
dinner is in progress.  One philosopher is replaced and another moved
to a different machine, both mid-dinner; nobody starves, meal counters
survive, and the table's fork bookkeeping stays consistent — because
the reconfiguration point sits in the *thinking* phase, where a
philosopher holds no forks and has no outstanding request (the
application-level consistency condition Conic asks programmers to
guarantee by hand, here enforced by point placement alone).

Run:  python examples/evolving_philosophers.py
"""

import time

from repro import SoftwareBus
from repro.apps.philosophers import build_philosophers_configuration, meal_counts
from repro.reconfig.scripts import move_module, replace_module
from repro.state.machine import MACHINES


def main():
    config = build_philosophers_configuration(count=3, think=0.01)
    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("alpha", MACHINES["sparc-like"])
    bus.add_host("beta", MACHINES["vax-like"])
    bus.launch(config, default_host="alpha")

    def wait_min_meals(minimum):
        while not all(c >= minimum for c in meal_counts(bus)):
            bus.check_health()
            time.sleep(0.01)

    wait_min_meals(2)
    print(f"meal counts before changes: {meal_counts(bus)}")

    print("\nreplacing phil1 mid-dinner ...")
    report = replace_module(bus, "phil1", timeout=15)
    print(f"  {report.describe()}")

    print("moving phil2 to machine beta ...")
    report = move_module(bus, "phil2", machine="beta", timeout=15)
    print(f"  {report.describe()}")

    wait_min_meals(5)
    counts = meal_counts(bus)
    table = bus.get_module("table").mh.statics
    print(f"\nmeal counts after changes:  {counts}")
    print(f"table grants/denials: {table['grants']}/{table['denials']}")
    assert all(c >= 5 for c in counts), "someone starved!"
    bus.shutdown()
    print("OK — the dinner evolved without stopping.")


if __name__ == "__main__":
    main()
