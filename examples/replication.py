#!/usr/bin/env python
"""Replication: one captured state seeds two running clones.

The paper (and its companion system SURGEON [5]) lists replication among
the reconfiguration activities a platform must support.  Here the
monitor's compute module is replicated: the original divulges its state
once; a replacement takes over its name and bindings, while a second
clone starts on another machine.  A second display is then added
dynamically and bound to the replica — the application grew a whole
service path at runtime.

Run:  python examples/replication.py
"""

import time

from repro import SoftwareBus
from repro.apps import build_monitor_configuration
from repro.apps.monitor import DISPLAY_SOURCE
from repro.bus.spec import BindingSpec
from repro.reconfig.scripts import replicate_module
from repro.state.machine import MACHINES


def main():
    config = build_monitor_configuration(
        requests=16, group_size=4, interval=0.05, discard=False
    )
    config.modules["sensor"].attributes["interval"] = "0.004"
    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("alpha", MACHINES["sparc-like"])
    bus.add_host("beta", MACHINES["vax-like"])
    bus.launch(config, default_host="alpha")

    def displayed(instance="display"):
        return bus.get_module(instance).mh.statics.get("displayed", [])

    while len(displayed()) < 3:
        bus.check_health()
        time.sleep(0.01)

    print("replicating compute (one divulged state, two clones) ...")
    report, replica = replicate_module(
        bus, "compute", "compute2", machine="beta", timeout=15
    )
    print(f"  {report.describe()}")
    print(f"  replica {replica!r} started on beta with duplicated bindings")

    # Grow the application: a second display served by the replica.
    display2_spec = bus.module_specs["display"].with_attributes()
    display2_spec.inline_source = DISPLAY_SOURCE
    display2_spec.attributes.update(requests="6", group_size="4", interval="0.05")
    bus.add_module(display2_spec, instance="display2", machine="beta")
    # Rewire: replica serves display2 instead of sharing display.
    bus.remove_binding(BindingSpec("compute2", "display", "display", "temper"))
    bus.add_binding(BindingSpec("display2", "temper", "compute2", "display"))
    bus.start_module("display2")

    while len(displayed("display2")) < 6:
        bus.check_health()
        time.sleep(0.01)

    print("\ncurrent configuration after replication + growth:")
    print(bus.snapshot_configuration().describe())
    print(f"\ndisplay  got {len(displayed())} averages")
    print(f"display2 got {len(displayed('display2'))} averages "
          f"(served by the replica)")
    bus.shutdown()
    print("OK — replication and dynamic growth while the application ran.")


if __name__ == "__main__":
    main()
