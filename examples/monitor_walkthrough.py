#!/usr/bin/env python
"""The Monitor example, end to end — a walkthrough of paper Section 2.

Shows every artifact of the paper in order:

- Figure 2: the configuration specification (MIL) and its parse
- Figure 3: the original compute module source
- Figure 6: the static call graph and numbered reconfiguration graph
- Figure 4: the automatically prepared (reconfigurable) module source
- Figures 1 & 5: the live move of compute to another machine,
  mid-recursion, via the replacement script

Run:  python examples/monitor_walkthrough.py
"""

import time

from repro import SoftwareBus, prepare_module
from repro.apps import build_monitor_configuration
from repro.apps.monitor import COMPUTE_SOURCE, MONITOR_MIL
from repro.reconfig.scripts import move_module
from repro.state.frames import ProcessState
from repro.state.machine import MACHINES


def banner(title):
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main():
    banner("Figure 2 — configuration specification (MIL)")
    print(MONITOR_MIL)

    banner("Figure 3 — original compute module")
    print(COMPUTE_SOURCE)

    banner("Figure 6 — reconfiguration graph (numbered edges)")
    result = prepare_module(COMPUTE_SOURCE, "compute", declared_points=["R"])
    print(result.recon_graph.describe())
    print()
    print("frame layouts:")
    for name, layout in result.layouts.items():
        print(f"  {name}: fmt={layout.fmt!r} vars={layout.names()}")
    print("\nliveness at capture edges (paper: 'data-flow analysis could")
    print("be used to determine the set of live variables'):")
    for name, liveness in result.liveness.items():
        for edge in liveness.edges:
            print(
                f"  {name} edge {edge.edge_number} ({edge.kind}): "
                f"live={sorted(edge.live)} dead={sorted(edge.dead_captured)}"
            )

    banner("Figure 4 — automatically prepared compute module (excerpt)")
    lines = result.source.split("\n")
    # Print the compute procedure (the part Figure 4 centres on).
    start = next(i for i, l in enumerate(lines) if l.startswith("def compute"))
    print("\n".join(lines[start : start + 46]))
    print("    ... (dispatch loop continues)")

    banner("Figures 1 & 5 — live move of compute, mid-recursion")
    config = build_monitor_configuration(
        requests=16, group_size=4, interval=0.05, discard=False
    )
    config.modules["sensor"].attributes["interval"] = "0.005"
    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("alpha", MACHINES["sparc-like"])
    bus.add_host("beta", MACHINES["vax-like"])
    bus.launch(config, default_host="alpha")

    def displayed():
        return bus.get_module("display").mh.statics.get("displayed", [])

    while len(displayed()) < 3:
        bus.check_health()
        time.sleep(0.01)

    report = move_module(bus, "compute", machine="beta", timeout=15)
    print(report.describe())
    packet = bus.get_module("compute").mh.incoming_packet
    state = ProcessState.from_bytes(packet)
    print(f"captured state: {state.summary()}")
    print("activation records (top of stack first):")
    for record in state.stack:
        print(
            f"  {record.procedure}: resume location {record.location}, "
            f"fmt {record.fmt!r}, values {record.values}"
        )

    while len(displayed()) < 16:
        bus.check_health()
        time.sleep(0.01)
    values = displayed()
    bus.shutdown()
    assert values == [2.5 + 4 * k for k in range(16)]
    print(f"\nall 16 averages correct across the move: {values}")
    print("\nreconfiguration trace:")
    for line in bus.trace[-8:]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
