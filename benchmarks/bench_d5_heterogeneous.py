"""D5 — heterogeneous state translation (paper Sections 1.2 and 5).

Paper: the abstract state format "permits executing modules to be moved
to different architectures"; the compiler-generated (here: interpreter-
executed) translation handles all machine-specific detail.

Measured here: translating a deep process state between every pair of
double-capable simulated architectures — correctness (the abstract state
is bit-identical at the high level after any chain of hops) and
throughput of the native->canonical->native path; plus the native memory
images differing across machines, which is *why* the abstract format is
needed.
"""

import itertools

import pytest

from repro.state.format import ScalarType
from repro.state.frames import (
    ActivationRecord,
    ProcessState,
    StackState,
    frames_equal_ignoring_order_metadata,
)
from repro.state.machine import MACHINES

from benchmarks.conftest import report

PAIRS = [
    (a, b)
    for a, b in itertools.product(MACHINES, repeat=2)
    if MACHINES[a].float_bits == 64 and MACHINES[b].float_bits == 64
]


def deep_state(depth: int = 64) -> ProcessState:
    stack = StackState()
    stack.push_captured(ActivationRecord("compute", 4, "lllF", [4, depth, 0, 0.5]))
    for level in range(depth - 1):
        stack.push_captured(
            ActivationRecord("compute", 3, "lllF", [3, depth, level, level / 3.0])
        )
    stack.push_captured(ActivationRecord("main", 1, "llF", [1, depth, 0.0]))
    return ProcessState(
        module="compute",
        stack=stack,
        statics={"total": 123456, "name": "bench"},
        reconfig_point="R",
    )


@pytest.mark.benchmark(group="d5-heterogeneous")
@pytest.mark.parametrize("pair", PAIRS, ids=[f"{a}->{b}" for a, b in PAIRS])
def test_d5_translate_pair(benchmark, pair):
    source, target = MACHINES[pair[0]], MACHINES[pair[1]]
    state = deep_state()

    moved = benchmark(state.translate, source, target)
    assert frames_equal_ignoring_order_metadata(moved.stack, state.stack)
    assert moved.statics == state.statics


def test_d5_shape():
    state = deep_state()
    # A chain of hops across every architecture leaves the state intact.
    current = state
    chain = [MACHINES[name] for name, _ in PAIRS][:4]
    for source, target in zip(chain, chain[1:]):
        current = current.translate(source, target)
    assert frames_equal_ignoring_order_metadata(current.stack, state.stack)

    # Native images differ; canonical bytes do not.
    big = MACHINES["sparc-like"]
    little = MACHINES["vax-like"]
    spec = ScalarType("i")
    assert big.pack_native(spec, 2026) != little.pack_native(spec, 2026)
    normalized_a = ProcessState.from_bytes(state.to_bytes(big))
    normalized_b = ProcessState.from_bytes(state.to_bytes(little))
    normalized_a.source_machine = normalized_b.source_machine = ""
    assert normalized_a.to_bytes() == normalized_b.to_bytes()

    report(
        "D5",
        "abstract state moves across architectures; raw memory copies "
        "could not (native images differ)",
        f"{len(PAIRS)} machine pairs translated exactly; native int "
        f"images differ between {big.name} and {little.name}; canonical "
        f"bytes identical",
    )
