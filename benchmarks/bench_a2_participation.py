"""A2 (comparison) — automatic vs manual module participation.

Paper introduction: existing environments ([3], [6]) "require the
programmer to manually adapt a module to participate during
reconfiguration"; the contribution is doing it automatically from a set
of reconfiguration points.

Measured here: the programmer burden (hand-written participation lines
vs one marker line), the preparation cost of the automatic path, and
behavioural equivalence of the two adaptations of the same worker.
"""

import pytest

from repro.baselines.manual_participation import (
    AUTO_WORKER,
    MANUAL_WORKER,
    participation_line_counts,
)
from repro.core import prepare_module
from repro.runtime.mh import MH, ModuleStop
from repro.runtime.refs import Ref

from benchmarks.conftest import DirectPort, report


def run_worker(source_text, values):
    mh = MH("main")
    port = DirectPort(mh, {"inp": list(values)})
    port.stop_after_writes = len(values)
    mh.attach_port(port)
    namespace = {"mh": mh, "Ref": Ref}
    exec(compile(source_text, "<worker>", "exec"), namespace)
    try:
        namespace["main"]()
    except ModuleStop:
        pass
    return port.out


@pytest.mark.benchmark(group="a2-participation")
def test_a2_automatic_preparation_cost(benchmark):
    result = benchmark(prepare_module, AUTO_WORKER, "main")
    assert result.reports["main"].reconfig_capture_blocks == 1


@pytest.mark.benchmark(group="a2-participation")
def test_a2_equivalence(benchmark):
    auto_source = prepare_module(AUTO_WORKER, "main").source

    def both():
        manual = run_worker(MANUAL_WORKER, [3, 4, 5])
        auto = run_worker(auto_source, [3, 4, 5])
        assert manual == auto
        return auto

    out = benchmark(both)
    assert [v[1][0] for v in out] == [3.0, 7.0, 12.0]


def test_a2_shape():
    counts = participation_line_counts()
    assert counts["automatic_participation_lines"] == 1
    report(
        "A2",
        "other environments require manual adaptation; this paper "
        "automates it from programmer-designated points",
        f"functional core {counts['functional_core']} lines; manual "
        f"participation adds {counts['manual_participation_lines']} "
        f"hand-written lines; automatic adds "
        f"{counts['automatic_participation_lines']} (the marker) — and "
        f"scales to recursive modules where manual adaptation would mean "
        f"hand-writing all of Figure 4",
    )
