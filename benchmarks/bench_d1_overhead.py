"""D1 — steady-state run-time overhead vs checkpointing (paper Section 4).

Paper: "Our approach does not use checkpointing ... the run-time cost is
merely that of periodically testing the flags installed for
reconfiguration.  The cost of capturing the process state is paid only
when a reconfiguration is performed, instead of at regular intervals
during execution."

Measured here, on the same accumulation workload:

- the original (unprepared) module loop,
- the prepared module loop (flag tests + our dispatch-loop overhead —
  reported honestly; the paper's C version pays only the flag test),
- checkpointing at intervals 1, 100, and 1000 steps.

Expected shape: prepared-module cost is a constant factor over the
original and *independent of reconfiguration frequency*; checkpointing
cost grows as the interval shrinks, and at interval=1 dwarfs the flag
tests.
"""

import pytest

from repro.baselines.checkpoint import CheckpointedLoop
from repro.core import prepare_module
from repro.runtime.mh import MH, ModuleStop
from repro.runtime.refs import Ref

from benchmarks.conftest import DirectPort, report

STEPS = 5_000

WORKLOAD = """\
def main():
    n = mh.read1('inp')
    i = 0
    acc = 0.0
    while i < n:
        mh.reconfig_point('P')
        acc = acc + float(i) * 1.0001
        i = i + 1
    mh.write('out', 'F', acc)
"""

UNPREPARED = WORKLOAD.replace("        mh.reconfig_point('P')\n", "")

_expected = sum(float(i) * 1.0001 for i in range(STEPS))


def _run_module(code) -> float:
    mh = MH("m")
    port = DirectPort(mh, {"inp": [STEPS]})
    mh.attach_port(port)
    namespace = {"mh": mh, "Ref": Ref}
    exec(code, namespace)
    try:
        namespace["main"]()
    except ModuleStop:  # pragma: no cover
        pass
    return port.out[0][1][0]


@pytest.fixture(scope="module")
def compiled():
    prepared = prepare_module(WORKLOAD, "m").source
    return {
        "original": compile(UNPREPARED, "<original>", "exec"),
        "prepared": compile(prepared, "<prepared>", "exec"),
    }


@pytest.mark.benchmark(group="d1-overhead")
def test_d1_original_module(benchmark, compiled):
    result = benchmark(_run_module, compiled["original"])
    assert result == pytest.approx(_expected)


@pytest.mark.benchmark(group="d1-overhead")
def test_d1_prepared_module_flag_tests(benchmark, compiled):
    result = benchmark(_run_module, compiled["prepared"])
    assert result == pytest.approx(_expected)


def _checkpoint_step(state):
    return {
        "i": state["i"] + 1,
        "acc": state["acc"] + float(state["i"]) * 1.0001,
    }


@pytest.mark.benchmark(group="d1-overhead")
@pytest.mark.parametrize("interval", [1, 100, 1000])
def test_d1_checkpointing(benchmark, interval):
    def run():
        loop = CheckpointedLoop(_checkpoint_step, {"i": 0, "acc": 0.0}, interval)
        loop.run(STEPS)
        return loop.state["acc"]

    result = benchmark(run)
    assert result == pytest.approx(_expected)


def test_d1_shape(compiled):
    """The comparative claim, asserted directly on wall-clock numbers."""
    import time

    def time_of(fn, *args):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - start)
        return best

    t_original = time_of(_run_module, compiled["original"])
    t_prepared = time_of(_run_module, compiled["prepared"])

    def run_checkpoint(interval):
        loop = CheckpointedLoop(_checkpoint_step, {"i": 0, "acc": 0.0}, interval)
        loop.run(STEPS)

    t_ck1 = time_of(run_checkpoint, 1)
    t_ck1000 = time_of(run_checkpoint, 1000)

    # Checkpointing every step costs far more than flag tests.
    assert t_ck1 > t_prepared, (t_ck1, t_prepared)
    # And shrinking the interval makes it worse.
    assert t_ck1 > 3 * t_ck1000, (t_ck1, t_ck1000)

    report(
        "D1",
        "run-time cost is merely flag testing; checkpointing pays "
        "capture cost at every interval",
        f"original {t_original * 1e3:.1f}ms, prepared {t_prepared * 1e3:.1f}ms "
        f"(x{t_prepared / t_original:.1f} incl. dispatch overhead), "
        f"checkpoint@1 {t_ck1 * 1e3:.1f}ms (x{t_ck1 / t_prepared:.1f} vs "
        f"prepared), checkpoint@1000 {t_ck1000 * 1e3:.1f}ms",
    )
