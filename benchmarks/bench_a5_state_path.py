"""A5 (state fast path) — the reconfiguration critical path, timed.

The paper accepts "a reconfiguration delay measured in seconds", but the
delay the application *feels* is the platform's own overhead on top of
the wait-for-reconfiguration-point window.  This benchmark times the
three layers this repo optimises:

- ``roundtrip``   capture -> encode -> decode -> restore at stack depths
                  1 / 64 / 512 (the D2 scenario), driven through MH so
                  the compiled codec plans, zero-copy decode, and lazy
                  frame materialisation are all on the measured path;
- ``codec``       ProcessState to_bytes/from_bytes for a depth-512
                  packet, compiled vs the preserved seed codec
                  (``repro.state.reference``) *live in the same run* —
                  immune to machine drift between measurement sessions;
- ``fig1_move``   the end-to-end Monitor move (Figure 1): total latency
                  and the coordinator-controlled overhead
                  (total - delay_to_point) of the pipelined replace.

Run standalone to (re)generate ``BENCH_state.json``::

    PYTHONPATH=src python benchmarks/bench_a5_state_path.py [--quick]
"""

from __future__ import annotations

import gc
import json
import statistics
import sys
import time
from typing import Dict, List

from repro.apps.monitor import build_monitor_configuration
from repro.bus.bus import SoftwareBus
from repro.reconfig.scripts import move_module
from repro.runtime.mh import MH
from repro.state.frames import ProcessState
from repro.state.machine import MACHINES
from repro.state.reference import (
    reference_state_from_bytes,
    reference_state_to_bytes,
)

from benchmarks._meta import bench_meta
from benchmarks.conftest import report

DEPTHS = [1, 64, 512]

#: Milliseconds measured on the pre-fast-path state layer (the seed's
#: per-scalar tree-walk codec, eager frame decode, sequential
#: coordinator), same container, same harness as below (best-of-10 per
#: depth with GC collected between reps; fig1 total is the min of 7
#: moves, overhead the median).  Kept so regenerated BENCH_state.json
#: always records the before/after comparison.
PRE_FAST_PATH_BASELINE = {
    "roundtrip_ms": {"1": 0.286, "64": 2.301, "512": 17.762},
    "fig1_total_ms": 4.61,
    "fig1_overhead_ms": 2.41,
}


# -- D2 roundtrip ---------------------------------------------------------


def capture_at_depth(depth: int) -> bytes:
    mh = MH("compute", MACHINES["sparc-like"])
    mh.begin_reconfig_capture("R")
    mh.capture("compute", "lllF", 4, depth, 0, 0.0)
    for level in range(depth - 1):
        mh.capture("compute", "lllF", 3, depth, level + 1, float(level))
    mh.capture("main", "llF", 1, depth, 0.0)
    return mh.encode()


def restore_packet(packet: bytes, depth: int) -> None:
    clone = MH("compute", MACHINES["vax-like"], status="clone")
    clone.incoming_packet = packet
    clone.decode()
    clone.restore("main")
    for _ in range(depth):
        clone.restore("compute")
    clone.end_restore()


def _best_of(reps: int, fn, *args) -> float:
    """Best wall time of ``reps`` runs, in ms, GC parked between runs.

    The depth-512 roundtrip allocates ~1500 frames per pass; a GC cycle
    landing mid-measurement adds 30-50% noise, so single runs routinely
    misreport.  Best-of-N with a collect between reps measures the code,
    not the collector.
    """
    best = float("inf")
    for _ in range(reps):
        gc.collect()
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def measure_roundtrips(reps: int) -> Dict[str, float]:
    results = {}
    for depth in DEPTHS:
        def once():
            packet = capture_at_depth(depth)
            restore_packet(packet, depth)

        results[str(depth)] = round(_best_of(reps, once), 3)
    return results


# -- codec only, compiled vs seed, live -----------------------------------


def _sample_state(depth: int) -> ProcessState:
    mh = MH("compute", MACHINES["sparc-like"])
    mh.begin_reconfig_capture("R")
    for level in range(depth):
        mh.capture("compute", "lllF", 3, depth, level, float(level))
    mh.capture("main", "llF", 1, depth, 0.0)
    packet = mh.encode()
    state = ProcessState.from_bytes(packet)
    state.stack.materialize()
    return state


def measure_codec(reps: int) -> Dict[str, float]:
    machine = MACHINES["sparc-like"]
    state = _sample_state(512)
    packet = state.to_bytes(machine)
    assert packet == reference_state_to_bytes(state, machine), (
        "wire format diverged from the seed codec"
    )

    def compiled_pass():
        ProcessState.from_bytes(state.to_bytes(machine), machine).stack.materialize()

    def reference_pass():
        reference_state_from_bytes(reference_state_to_bytes(state, machine), machine)

    return {
        "compiled_ms": round(_best_of(reps, compiled_pass), 3),
        "reference_ms": round(_best_of(reps, reference_pass), 3),
    }


# -- FIG1 end-to-end move -------------------------------------------------


def _launch_monitor() -> SoftwareBus:
    config = build_monitor_configuration(
        requests=200, group_size=4, interval=0.005, discard=False
    )
    config.modules["sensor"].attributes["interval"] = "0.0005"
    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("alpha", MACHINES["sparc-like"])
    bus.add_host("beta", MACHINES["vax-like"])
    bus.launch(config, default_host="alpha")
    deadline = time.monotonic() + 20
    display = bus.get_module("display")
    while time.monotonic() < deadline:
        if len(display.mh.statics.get("displayed", [])) >= 2:
            return bus
        bus.check_health()
        time.sleep(0.005)
    raise AssertionError("monitor app made no progress")


def measure_fig1(rounds: int) -> Dict[str, float]:
    totals: List[float] = []
    overheads: List[float] = []
    for _ in range(rounds):
        bus = _launch_monitor()
        try:
            move = move_module(bus, "compute", machine="beta", timeout=15)
            totals.append(move.total_time * 1e3)
            overheads.append((move.total_time - move.delay_to_point) * 1e3)
        finally:
            bus.shutdown()
    # delay_to_point depends on where the app happened to be relative to
    # its reconfiguration point, so totals are noisy; the min is the
    # repeatable best case, while the platform-controlled overhead
    # (total - delay) is stable enough for a median.
    return {
        "total_ms": round(min(totals), 2),
        "overhead_ms": round(statistics.median(overheads), 2),
    }


# -- harness --------------------------------------------------------------


def run_all(quick: bool) -> Dict[str, Dict[str, float]]:
    reps = 3 if quick else 10
    return {
        "roundtrip_ms": measure_roundtrips(reps),
        "codec": measure_codec(reps),
        "fig1_move": measure_fig1(rounds=3 if quick else 7),
    }


def test_a5_state_path():
    results = run_all(quick=True)
    roundtrip = results["roundtrip_ms"]
    codec = results["codec"]
    baseline = PRE_FAST_PATH_BASELINE["roundtrip_ms"]
    speedups = {d: baseline[d] / roundtrip[d] for d in roundtrip}
    report(
        "A5",
        "state capture cost paid only at reconfiguration; the platform's "
        "own share of the reconfiguration delay should be small against "
        "the paper's seconds-scale acceptability bar",
        f"roundtrip ms {roundtrip} (speedup vs seed {speedups}); "
        f"codec live {codec}; fig1 {results['fig1_move']}",
    )
    # The depth-512 roundtrip must beat the seed by >= 3x, and the
    # linear-in-depth D2 shape must survive the fast path.
    assert speedups["512"] >= 3.0, speedups
    per_frame_mid = roundtrip["64"] / 64
    per_frame_deep = roundtrip["512"] / 512
    assert 0.3 < per_frame_mid / per_frame_deep < 3.0, roundtrip
    # The compiled codec must beat the seed codec measured live, same run.
    assert codec["compiled_ms"] < codec["reference_ms"], codec


def main(argv: List[str]) -> None:
    quick = "--quick" in argv
    out = "BENCH_state.json"
    if "--out" in argv:
        out = argv[argv.index("--out") + 1]
    results = run_all(quick)
    roundtrip = results["roundtrip_ms"]
    baseline = PRE_FAST_PATH_BASELINE["roundtrip_ms"]
    payload = {
        "benchmark": "bench_a5_state_path",
        "unit": "milliseconds",
        "quick": quick,
        "meta": bench_meta(),
        "results": results,
        "pre_fast_path_baseline": PRE_FAST_PATH_BASELINE,
        "speedup_vs_pre_fast_path": {
            "roundtrip": {
                depth: round(baseline[depth] / roundtrip[depth], 2)
                for depth in roundtrip
            },
            "codec_live": round(
                results["codec"]["reference_ms"] / results["codec"]["compiled_ms"], 2
            ),
            "fig1_total": round(
                PRE_FAST_PATH_BASELINE["fig1_total_ms"]
                / results["fig1_move"]["total_ms"],
                2,
            ),
            "fig1_overhead": round(
                PRE_FAST_PATH_BASELINE["fig1_overhead_ms"]
                / results["fig1_move"]["overhead_ms"],
                2,
            ),
        },
    }
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main(sys.argv[1:])
