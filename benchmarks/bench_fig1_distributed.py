"""FIG1 (distributed variant) — the monitor move across real processes.

Same scenario as ``bench_fig1_monitor_move`` but with every machine a
separate OS process and the state packet crossing a real TCP socket —
the closest this reproduction gets to the paper's actual deployment
(POLYLITH modules on networked workstations).
"""

import time

import pytest

from repro.apps.monitor import build_monitor_configuration
from repro.bus.tcp import DistributedBus

from benchmarks.conftest import report


def _launch():
    config = build_monitor_configuration(
        requests=200, group_size=4, interval=0.02, discard=False
    )
    config.modules["sensor"].attributes["interval"] = "0.002"
    bus = DistributedBus(sleep_scale=1.0)
    bus.spawn_machine("alpha", "sparc-like")
    bus.spawn_machine("beta", "vax-like")
    bus.launch(
        config,
        placement={"display": "alpha", "compute": "alpha", "sensor": "alpha"},
    )
    deadline = time.monotonic() + 40
    while time.monotonic() < deadline:
        if len(bus.statics_of("display").get("displayed", [])) >= 2:
            return bus
        time.sleep(0.02)
    raise AssertionError("distributed monitor made no progress")


@pytest.mark.slow
def test_fig1_distributed_move(benchmark):
    def setup():
        return (_launch(),), {}

    def run_move(bus):
        move = bus.move_module("compute", "beta", timeout=20)
        display_before = len(bus.statics_of("display")["displayed"])
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            values = bus.statics_of("display")["displayed"]
            if len(values) >= display_before + 3:
                break
            time.sleep(0.02)
        values = bus.statics_of("display")["displayed"]
        assert values == [2.5 + 4 * k for k in range(len(values))]
        bus.shutdown()
        return move

    move = benchmark.pedantic(run_move, setup=setup, rounds=2, iterations=1)
    report(
        "FIG1-TCP",
        "the move works across genuinely separate machines (processes); "
        "state crosses the network in the abstract format",
        f"cross-process move: packet {move['packet_bytes']}B over TCP, "
        f"total {move['total_s'] * 1000:.0f}ms" if move else "completed",
    )
