"""FIG5 — the replacement reconfiguration script (paper Figure 5).

Paper: a procedural script performs the replacement — access the old
module, prepare bind edits (del/add per interface plus cq/rmq), move the
state, rebind all at once, start the new module, remove the old.  The
script "is easily parameterized to accept a module name and attributes".

Measured here: the line-by-line Figure 5 rendition executes against a
live application; the bind-command batch has exactly the paper's command
mix; end-to-end script latency.
"""

import time

from repro.apps.monitor import build_monitor_configuration
from repro.bus.bus import SoftwareBus
from repro.reconfig.coordinator import prepare_rebind_batch
from repro.reconfig.primitives import obj_cap
from repro.reconfig.scripts import figure5_replacement_script
from repro.state.machine import MACHINES

from benchmarks.conftest import report


def _launch():
    config = build_monitor_configuration(
        requests=200, group_size=4, interval=0.005, discard=False
    )
    config.modules["sensor"].attributes["interval"] = "0.0005"
    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("alpha", MACHINES["sparc-like"])
    bus.add_host("beta", MACHINES["vax-like"])
    bus.launch(config, default_host="alpha")
    display = bus.get_module("display")
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline:
        if len(display.mh.statics.get("displayed", [])) >= 2:
            return bus
        time.sleep(0.005)
    raise AssertionError("no progress")


def test_fig5_bind_command_mix(benchmark):
    bus = _launch()
    try:
        old = obj_cap(bus, "compute")
        batch = benchmark(prepare_rebind_batch, bus, old, "compute.new")
        ops = [c.op for c in batch.commands]
        # Two bindings -> one del+add pair each; two receivable
        # interfaces -> one cq+rmq pair each (exactly Figure 5's loops).
        assert ops.count("del") == 2
        assert ops.count("add") == 2
        assert ops.count("cq") == 2
        assert ops.count("rmq") == 2
        report(
            "FIG5",
            "script prepares del/add per binding and cq/rmq per interface",
            f"command mix {sorted(ops)}",
        )
    finally:
        bus.shutdown()


def test_fig5_replacement_script_end_to_end(benchmark):
    def setup():
        return (_launch(),), {}

    def run_script(bus):
        started = time.perf_counter()
        new_name = figure5_replacement_script(bus, "compute", machine="beta")
        elapsed = time.perf_counter() - started
        assert bus.get_module(new_name).host.name == "beta"
        assert not bus.has_module("compute")
        # continuity check
        display = bus.get_module("display")
        before = len(display.mh.statics["displayed"])
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            values = display.mh.statics["displayed"]
            if len(values) >= before + 3:
                break
            bus.check_health()
            time.sleep(0.005)
        values = display.mh.statics["displayed"]
        assert values == [2.5 + 4 * k for k in range(len(values))]
        bus.shutdown()
        return elapsed

    benchmark.pedantic(run_script, setup=setup, rounds=3, iterations=1)
