"""D6 — ahead-of-time preparation vs migrate-time program generation
(paper Section 4, comparison with Theimer & Hayes [10]).

Paper: "Because the number of reconfiguration points is relatively
small, we can prepare the program for all possible reconfigurations when
the original program is compiled, whereas they prepare a migration
program for only the specific migration requested, thus must prepare it
at migration time."

Measured here, over N consecutive migrations of the compute module:

- ours: ONE prepare_module pass, then per-migration cost = instantiate
  the already-prepared source and restore;
- [10]: per-migration cost = generate + compile the migration program,
  then restore.

Expected shape: our per-migration critical path excludes the generation
cost entirely; the migrate-time approach pays it every time, so its
total grows with a visibly larger slope.
"""

import time

import pytest

from repro.baselines.migration_program import generate_migration_program
from repro.core import prepare_module
from repro.runtime.mh import MH, ModuleStop, SleepPolicy
from repro.runtime.refs import Ref

from benchmarks.conftest import DirectPort, report

from tests.core.helpers import COMPUTE_SRC, capture_compute_mid_recursion

MIGRATIONS = 5


def _restore_with_source(prepared_source_code, packet, sensor_values):
    mh = MH("compute", status="clone", sleep_policy=SleepPolicy(0.0))
    mh.incoming_packet = packet
    port = DirectPort(mh, {"display": [], "sensor": list(sensor_values)})
    port.stop_after_writes = 1
    mh.attach_port(port)
    namespace = {"mh": mh, "Ref": Ref}
    exec(prepared_source_code, namespace)
    try:
        namespace["main"]()
    except ModuleStop:
        pass
    assert port.out and port.out[0][0] == "display"


@pytest.fixture(scope="module")
def captured():
    packet, port = capture_compute_mid_recursion(n=4, reconfig_after_reads=3)
    return packet, list(port.queues["sensor"])


@pytest.mark.benchmark(group="d6-migrate")
def test_d6_ahead_of_time(benchmark, captured):
    packet, sensor = captured

    def ours():
        # Preparation happened once, at "compile time" — before any
        # migration; only instantiation is on the migration path.
        for _ in range(MIGRATIONS):
            _restore_with_source(PREPARED_CODE, packet, sensor)

    benchmark(ours)


@pytest.mark.benchmark(group="d6-migrate")
def test_d6_migrate_time_generation(benchmark, captured):
    packet, sensor = captured

    def theirs():
        for _ in range(MIGRATIONS):
            program = generate_migration_program(COMPUTE_SRC, packet, "compute")
            _restore_with_source(program.code, packet, sensor)

    benchmark(theirs)


# One ahead-of-time preparation for the whole module lifetime.
PREPARED_CODE = compile(
    prepare_module(COMPUTE_SRC, "compute").source, "<prepared>", "exec"
)


def test_d6_shape(captured):
    packet, sensor = captured

    def time_of(fn):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    t_ours = time_of(lambda: _restore_with_source(PREPARED_CODE, packet, sensor))

    def one_migration_theirs():
        program = generate_migration_program(COMPUTE_SRC, packet, "compute")
        _restore_with_source(program.code, packet, sensor)

    t_theirs = time_of(one_migration_theirs)

    assert t_theirs > t_ours, (t_theirs, t_ours)
    report(
        "D6",
        "ahead-of-time preparation removes generation from the migration "
        "critical path; migrate-time generation pays it per migration",
        f"per-migration: ours {t_ours * 1e3:.2f}ms vs migrate-time "
        f"generation {t_theirs * 1e3:.2f}ms "
        f"(x{t_theirs / t_ours:.1f})",
    )
