"""D2 — capture cost is paid only at reconfiguration, and scales with the
activation-record stack (paper Sections 1.2 and 4).

Paper: "The cost of capturing the process state is paid only when a
reconfiguration is performed"; that cost is dominated by the AR stack.

Measured here: the full capture -> encode -> decode -> restore round
trip as a function of recursion depth, plus the abstract packet size.
Expected shape: time and packet size grow linearly in depth; even at
depth 512 the cost is far below the paper's "reconfiguration delay
measured in seconds" acceptability bar.
"""

import pytest

from repro.runtime.mh import MH
from repro.state.frames import ProcessState
from repro.state.machine import MACHINES

from benchmarks.conftest import report

DEPTHS = [1, 4, 16, 64, 256, 512]


def capture_at_depth(depth: int) -> bytes:
    mh = MH("compute", MACHINES["sparc-like"])
    mh.begin_reconfig_capture("R")
    mh.capture("compute", "lllF", 4, depth, 0, 0.0)
    for level in range(depth - 1):
        mh.capture("compute", "lllF", 3, depth, level + 1, float(level))
    mh.capture("main", "llF", 1, depth, 0.0)
    return mh.encode()


def restore_packet(packet: bytes, depth: int) -> None:
    clone = MH("compute", MACHINES["vax-like"], status="clone")
    clone.incoming_packet = packet
    clone.decode()
    clone.restore("main")
    for _ in range(depth):
        clone.restore("compute")
    clone.end_restore()


@pytest.mark.benchmark(group="d2-capture")
@pytest.mark.parametrize("depth", DEPTHS)
def test_d2_capture_encode(benchmark, depth):
    packet = benchmark(capture_at_depth, depth)
    assert ProcessState.from_bytes(packet).stack.depth == depth + 1


@pytest.mark.benchmark(group="d2-restore")
@pytest.mark.parametrize("depth", DEPTHS)
def test_d2_decode_restore(benchmark, depth):
    packet = capture_at_depth(depth)
    benchmark(restore_packet, packet, depth)


def test_d2_shape():
    import time

    sizes = {}
    times = {}
    for depth in DEPTHS:
        start = time.perf_counter()
        packet = capture_at_depth(depth)
        restore_packet(packet, depth)
        times[depth] = time.perf_counter() - start
        sizes[depth] = len(packet)

    # Packet size grows linearly: bytes-per-frame roughly constant.
    per_frame_small = (sizes[16] - sizes[4]) / 12
    per_frame_large = (sizes[512] - sizes[256]) / 256
    assert 0.5 < per_frame_small / per_frame_large < 2.0

    # Round trip stays far below the paper's seconds-scale bar.
    assert times[512] < 1.0

    report(
        "D2",
        "capture cost paid only at reconfiguration; scales with AR stack",
        f"packet bytes {sizes}; roundtrip ms "
        f"{ {d: round(t * 1e3, 2) for d, t in times.items()} }",
    )
