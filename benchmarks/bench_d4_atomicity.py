"""D4 — atomicity-level comparison (paper Section 4).

Paper: platforms support updates at module, procedure, or statement
level.  Module level ([9]): "a module cannot be updated while it is
executing."  Procedure level ([4]): bottom-up replacement; leaf changes
are quick, "when the main procedure has changed, the update cannot
complete until the program terminates."  Statement level (this paper):
updates complete at the next reconfiguration point with full state
carried.

Measured here, one scenario per level on equivalent busy workloads:

=====================  ==========================  =====================
scenario               completes?                   state carried?
=====================  ==========================  =====================
statement-level        yes (next point)             yes (exact)
procedure-level leaf   yes (quick)                  n/a (no relocation)
procedure-level main   BLOCKS until termination     n/a
module-level forced    yes (by discarding)          NO — work lost
=====================  ==========================  =====================
"""

import threading
import time

import pytest

from repro.baselines.module_atomic import module_level_replace
from repro.baselines.procedure_update import (
    Procedure,
    ProcedureTable,
    ProcedureUpdater,
    UpdateBlocked,
)
from repro.core import prepare_module
from repro.runtime.mh import MH
from repro.runtime.refs import Ref
from repro.state.frames import ProcessState

from benchmarks.conftest import DirectPort, report

WORKER = """\
def main():
    i = mh.read1('start')
    n = mh.read1('limit')
    acc = 0.0
    while i < n:
        mh.reconfig_point('P')
        acc = acc + float(i)
        i = i + 1
    mh.write('out', 'F', acc)
"""


def statement_level_update() -> dict:
    """Our approach: capture mid-loop, resume in the replacement."""
    prepared = prepare_module(WORKER, "m").source
    code = compile(prepared, "<m>", "exec")

    mh = MH("m")
    port = DirectPort(mh, {"start": [500], "limit": [1000]})
    mh.attach_port(port)
    mh.request_reconfig()
    started = time.perf_counter()
    namespace = {"mh": mh, "Ref": Ref}
    exec(code, namespace)
    namespace["main"]()
    captured = time.perf_counter() - started

    clone = MH("m", status="clone")
    clone.incoming_packet = mh.outgoing_packet
    clone_port = DirectPort(clone, {"start": [], "limit": []})
    clone.attach_port(clone_port)
    namespace2 = {"mh": clone, "Ref": Ref}
    exec(code, namespace2)
    namespace2["main"]()
    result = clone_port.out[0][1][0]
    state = ProcessState.from_bytes(mh.outgoing_packet)
    return {
        "completed": True,
        "state_carried": result == sum(float(i) for i in range(500, 1000)),
        "delay_s": captured,
        "captured_depth": state.stack.depth,
    }


def make_table(release: threading.Event, started: threading.Event) -> ProcedureTable:
    def leaf(table, x):
        return x + 1

    def busy_main(table, x):
        started.set()
        release.wait(10)
        return table.call("leaf", x)

    return ProcedureTable(
        [
            Procedure("leaf", leaf),
            Procedure("main", busy_main, calls={"leaf"}),
        ]
    )


def procedure_level_updates() -> dict:
    release = threading.Event()
    started = threading.Event()
    table = make_table(release, started)
    thread = threading.Thread(target=table.call, args=("main", 1))
    thread.start()
    started.wait(5)

    updater = ProcedureUpdater(table)

    begun = time.perf_counter()
    updater.update({"leaf": Procedure("leaf", lambda t, x: x + 2, version=2)},
                   timeout=5)
    leaf_time = time.perf_counter() - begun

    begun = time.perf_counter()
    main_blocked = False
    try:
        updater.update(
            {"main": Procedure("main", lambda t, x: x, version=2,
                               calls={"leaf"})},
            timeout=0.4,
        )
    except UpdateBlocked:
        main_blocked = True
    blocked_for = time.perf_counter() - begun

    release.set()
    thread.join(5)
    # After "program termination" the main update completes.
    updater.update(
        {"main": Procedure("main", lambda t, x: x, version=2, calls={"leaf"})},
        timeout=5,
    )
    return {
        "leaf_update_s": leaf_time,
        "main_blocked": main_blocked,
        "main_blocked_for_s": blocked_for,
        "main_completed_after_termination": table.version("main") == 2,
    }


def module_level_update() -> dict:
    from tests.reconfig.helpers import launch_monitor, wait_displayed

    bus = launch_monitor()
    try:
        wait_displayed(bus, 2)
        bus.get_module("compute").mh.statics["marker"] = "in-flight-state"
        begun = time.perf_counter()
        result = module_level_replace(
            bus, "compute", machine="beta", quiescence_timeout=0.2, force=True
        )
        elapsed = time.perf_counter() - begun
        state_lost = "marker" not in bus.get_module("compute").mh.statics
        return {
            "completed": True,
            "state_carried": not state_lost and result.state_carried,
            "delay_s": elapsed,
        }
    finally:
        bus.shutdown()


@pytest.mark.benchmark(group="d4-atomicity")
def test_d4_statement_level(benchmark):
    outcome = benchmark.pedantic(statement_level_update, rounds=3, iterations=1)
    assert outcome["completed"] and outcome["state_carried"]


@pytest.mark.benchmark(group="d4-atomicity")
def test_d4_procedure_level(benchmark):
    outcome = benchmark.pedantic(procedure_level_updates, rounds=3, iterations=1)
    assert outcome["main_blocked"]
    assert outcome["main_completed_after_termination"]
    assert outcome["leaf_update_s"] < outcome["main_blocked_for_s"]


@pytest.mark.benchmark(group="d4-atomicity")
def test_d4_module_level(benchmark):
    outcome = benchmark.pedantic(module_level_update, rounds=3, iterations=1)
    assert outcome["completed"]
    assert not outcome["state_carried"]


def test_d4_shape():
    ours = statement_level_update()
    frieder_segal = procedure_level_updates()
    surgeon = module_level_update()

    assert ours["completed"] and ours["state_carried"]
    assert frieder_segal["main_blocked"]
    assert surgeon["completed"] and not surgeon["state_carried"]

    report(
        "D4",
        "statement-level completes with state; procedure-level blocks on "
        "changed main until termination; module-level discards state",
        f"ours: carried state at depth {ours['captured_depth']} in "
        f"{ours['delay_s'] * 1e3:.1f}ms | procedure-level: leaf "
        f"{frieder_segal['leaf_update_s'] * 1e3:.1f}ms, main blocked "
        f"{frieder_segal['main_blocked_for_s'] * 1e3:.0f}ms then completed "
        f"after termination | module-level: completed in "
        f"{surgeon['delay_s'] * 1e3:.0f}ms, state lost",
    )
