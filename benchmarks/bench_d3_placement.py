"""D3 — reconfiguration delay vs reconfiguration-point placement
(paper Section 4).

Paper: "In order for a module to quickly respond to a reconfiguration
request, the reconfiguration points must be located within the most
frequently executed code. ... it is preferable to place reconfiguration
points outside of computationally intensive loops ... so that the code
executed most often can be optimized as much as possible."

Measured here: a worker loop with the point checked (a) every iteration
("hot") vs (b) every 1000th iteration ("cold").  The signal is raised
with the loop already at iteration i0; the captured frame records the
iteration at which the module divulged, so the response delay in
*iterations* is exact and deterministic; wall-clock per-iteration cost of
each placement is benchmarked alongside.

Expected shape: hot placement responds within one iteration but pays a
flag test every iteration; cold placement pays the flag test a thousandth
as often but can lag up to 999 iterations — exactly the paper's
trade-off.
"""

import pytest

from repro.core import prepare_module
from repro.runtime.mh import MH
from repro.runtime.refs import Ref
from repro.state.frames import ProcessState

from benchmarks.conftest import DirectPort, report

HOT = """\
def main():
    i = mh.read1('start')
    n = mh.read1('limit')
    acc = 0.0
    while i < n:
        mh.reconfig_point('P')
        acc = acc + float(i)
        i = i + 1
    mh.write('out', 'F', acc)
"""

COLD = """\
def main():
    i = mh.read1('start')
    n = mh.read1('limit')
    acc = 0.0
    while i < n:
        if i % 1000 == 0:
            mh.reconfig_point('P')
        acc = acc + float(i)
        i = i + 1
    mh.write('out', 'F', acc)
"""


def divulge_iteration(source: str, start: int) -> int:
    """Signal before start; return the iteration at which R was reached."""
    prepared = prepare_module(source, "m").source
    mh = MH("m")
    port = DirectPort(mh, {"start": [start], "limit": [10**9]})
    mh.attach_port(port)
    mh.request_reconfig()
    namespace = {"mh": mh, "Ref": Ref}
    exec(compile(prepared, "<m>", "exec"), namespace)
    namespace["main"]()
    assert mh.divulged.is_set()
    state = ProcessState.from_bytes(mh.outgoing_packet)
    (frame,) = state.stack.records()
    by_name = dict(zip(["loc", "i", "n", "acc"], frame.values))
    return by_name["i"]


def run_to_completion(source: str, steps: int) -> float:
    prepared = prepare_module(source, "m").source
    mh = MH("m")
    port = DirectPort(mh, {"start": [0], "limit": [steps]})
    mh.attach_port(port)
    namespace = {"mh": mh, "Ref": Ref}
    exec(compile(prepared, "<m>", "exec"), namespace)
    namespace["main"]()
    return port.out[0][1][0]


class TestResponseDelay:
    def test_hot_point_responds_immediately(self):
        assert divulge_iteration(HOT, 1234) == 1234

    def test_cold_point_lags_to_next_check(self):
        assert divulge_iteration(COLD, 1234) == 2000

    def test_cold_point_zero_lag_on_boundary(self):
        assert divulge_iteration(COLD, 3000) == 3000


@pytest.mark.benchmark(group="d3-placement")
def test_d3_hot_loop_throughput(benchmark):
    result = benchmark(run_to_completion, HOT, 5000)
    assert result == sum(float(i) for i in range(5000))


@pytest.mark.benchmark(group="d3-placement")
def test_d3_cold_loop_throughput(benchmark):
    result = benchmark(run_to_completion, COLD, 5000)
    assert result == sum(float(i) for i in range(5000))


def test_d3_shape():
    hot_delay = divulge_iteration(HOT, 1234) - 1234
    cold_delay = divulge_iteration(COLD, 1234) - 1234
    assert hot_delay == 0
    assert cold_delay == 766
    report(
        "D3",
        "points in frequently executed code respond quickly; points "
        "outside hot loops trade response delay for fewer flag tests",
        f"hot placement delay {hot_delay} iterations; cold placement "
        f"delay {cold_delay} iterations (next multiple of 1000)",
    )
