"""Shared metadata block for ``BENCH_*.json`` writers.

Every benchmark payload carries the same ``meta`` block so numbers from
different containers and different PRs stay comparable — a throughput
figure without its cpu count, or a load run without its seed, cannot be
trended.  The schema tag versions the block itself so downstream tooling
(``tools/stats``-style consumers, CI artifact diffing) can detect shape
changes instead of guessing.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Dict, Optional

#: Bump when the meta block's shape changes.
META_SCHEMA = "repro-bench-meta/1"


def bench_meta(
    seed: Optional[int] = None,
    sample: Optional[int] = None,
    batch: Optional[Dict[str, object]] = None,
    **extra: object,
) -> Dict[str, object]:
    """The consistent ``{schema, cpus, seed, sample, batch, ...}`` block.

    ``seed`` is the workload RNG seed (None for benchmarks without
    randomness); ``sample`` is the telemetry span sampling rate in
    effect (None when telemetry was disabled for the run); ``batch`` is
    the link-coalescing settings in effect (pass
    ``repro.bus.batch.batch_settings()`` for benchmarks that cross a
    transport — flush caps and the backpressure watermark change those
    numbers as much as cpu count does).  Extra keyword pairs pass
    straight through for benchmark-specific context.
    """
    meta: Dict[str, object] = {
        "schema": META_SCHEMA,
        "cpus": os.cpu_count(),
        "seed": seed,
        "sample": sample,
        "python": platform.python_version(),
        "platform": sys.platform,
    }
    if batch is not None:
        meta["batch"] = batch
    meta.update(extra)
    return meta
