"""A4 (bus fast path) — message throughput of the software bus.

POLYLITH's bus is the substrate every experiment rides on: it provides
"basic operations for sending and receiving messages", and every
application, example, and reconfiguration script goes through
``SoftwareBus.route``.  The paper's design principle is that
reconfiguration support should cost only "a flag test" at run time —
so the *message* hot path must not pay for reconfigurability either.
This benchmark measures delivered messages/second through ``route`` for
the configurations that stress the routing table:

- ``1to1``          one binding, same host (the latency floor);
- ``fanout32``      one sender endpoint bound to 32 receivers;
- ``bindings128``   the measured pair plus 128 unrelated bindings
                    (an O(bindings) route scan collapses here);
- ``xhost_fanout8`` one sender fanning out to 8 receivers on a
                    different architecture (stresses encode-once
                    cross-host delivery: one wire encode per send, one
                    decode per distinct receiver profile).

A second tier measures the *cross-process link path* through the
worker-pool transport.  Its headline ``aggregate`` is an in-process
sender fanning out over pipe links to 8 receivers in each of 2 worker
processes — every delivery crosses a link, so the number is dominated
by frame cost, which is exactly what send-side coalescing (see
:mod:`repro.bus.batch`) amortizes: ``aggregate_unbatched`` re-measures
the same shape with batching disabled and ``batch_speedup`` is their
ratio.  The tier also keeps the original pinned credit-loop pairs
(``pinned_pairs_aggregate``) where pushed host-local routes bypass the
links entirely — the multi-core scale-out story — plus the in-process
pair baseline.  The tier publishes honest numbers: ``cpus`` records
``os.cpu_count()``; on a single-core container the workers timeshare
one core, so the win comes from fewer frames, not more cores.

Run standalone to (re)generate ``BENCH_bus.json``::

    PYTHONPATH=src python benchmarks/bench_a4_bus_throughput.py [--quick]
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Tuple

from repro.bus.batch import batch_settings, batching_disabled
from repro.bus.bus import SoftwareBus
from repro.bus.interfaces import InterfaceDecl, Role
from repro.bus.message import Message
from repro.bus.spec import BindingSpec, ModuleSpec
from repro.state.machine import MACHINES

from benchmarks._meta import bench_meta
from benchmarks.conftest import report

IDLE = "def main():\n    pass\n"

#: Producer half of the credit-loop pair: keeps a fixed window of
#: messages in flight, replenishing 64 per credit received.
PRODUCER = '''
def main():
    sent = 0
    mh.statics["sent"] = 0
    mh.init()
    for _ in range(256):
        mh.write("out", "l", 1)
    sent = 256
    while mh.running:
        mh.read1("credit")
        for _ in range(64):
            mh.write("out", "l", 1)
        sent = sent + 64
        mh.statics["sent"] = sent
'''

#: Consumer half: counts deliveries, returns one credit per 64.
CONSUMER = '''
def main():
    got = 0
    mh.statics["got"] = 0
    mh.init()
    while mh.running:
        mh.read1("inp")
        got = got + 1
        if got % 64 == 0:
            mh.write("credit_out", "l", 1)
            mh.statics["got"] = got
'''

#: Delivered msgs/sec measured on the pre-fast-path bus (the seed's
#: O(bindings) route scan + 50 ms queue polling), same container, 1.0 s
#: measurement windows.  Kept so regenerated BENCH_bus.json always
#: records the before/after comparison.
PRE_FAST_PATH_BASELINE = {
    "1to1": 344650.0,
    "fanout32": 493423.9,
    "bindings128": 30102.2,
    "xhost_fanout8": 40624.8,
}


def sender_spec(name: str = "sender") -> ModuleSpec:
    return ModuleSpec(
        name=name,
        inline_source=IDLE,
        interfaces=[InterfaceDecl("out", Role.DEFINE, pattern="l")],
    )


def receiver_spec(name: str = "receiver") -> ModuleSpec:
    return ModuleSpec(
        name=name,
        inline_source=IDLE,
        interfaces=[InterfaceDecl("inp", Role.USE, pattern="l")],
    )


def build(
    receivers: int,
    extra_pairs: int = 0,
    receiver_host: str = "local",
) -> Tuple[SoftwareBus, List[str]]:
    """A bus with one sender endpoint bound to ``receivers`` receivers.

    ``extra_pairs`` unrelated sender/receiver pairs are bound besides the
    measured endpoint; modules are never started — ``route`` is driven
    directly, which is exactly the per-message hot path.
    """
    bus = SoftwareBus(sleep_scale=0.0)
    bus.add_host("local", MACHINES["modern-64"])
    if receiver_host != "local":
        bus.add_host(receiver_host, MACHINES["sparc-like"])
    bus.add_module(sender_spec(), machine="local")
    names = []
    for i in range(receivers):
        name = f"r{i}"
        bus.add_module(receiver_spec(), instance=name, machine=receiver_host)
        bus.add_binding(BindingSpec("sender", "out", name, "inp"))
        names.append(name)
    for i in range(extra_pairs):
        src, dst = f"xs{i}", f"xr{i}"
        bus.add_module(sender_spec(name="sender"), instance=src, machine="local")
        bus.add_module(receiver_spec(), instance=dst, machine="local")
        bus.add_binding(BindingSpec(src, "out", dst, "inp"))
    return bus, names


def measure(bus: SoftwareBus, names: List[str], seconds: float) -> float:
    """Delivered messages per second through ``route``."""
    message = Message(
        values=[7], fmt="l", source_instance="sender", source_interface="out"
    )
    queues = [bus.get_module(name).queue("inp") for name in names]
    batch = 200

    def spin(duration: float) -> Tuple[int, float]:
        sent = 0
        start = time.perf_counter()
        deadline = start + duration
        while time.perf_counter() < deadline:
            for _ in range(batch):
                bus.route("sender", "out", message)
            sent += batch
            for queue in queues:  # keep memory bounded
                queue.drain()
        return sent, time.perf_counter() - start

    spin(seconds / 4)  # warmup
    sent, elapsed = spin(seconds)
    return sent * len(names) / elapsed


def run_all(seconds: float) -> Dict[str, float]:
    results: Dict[str, float] = {}
    scenarios = {
        "1to1": dict(receivers=1),
        "fanout32": dict(receivers=32),
        "bindings128": dict(receivers=1, extra_pairs=128),
        "xhost_fanout8": dict(receivers=8, receiver_host="sparc"),
    }
    for key, kwargs in scenarios.items():
        bus, names = build(**kwargs)
        try:
            results[key] = round(measure(bus, names, seconds), 1)
        finally:
            bus.shutdown()
    return results


def producer_spec() -> ModuleSpec:
    return ModuleSpec(
        name="producer",
        inline_source=PRODUCER,
        interfaces=[
            InterfaceDecl("out", Role.DEFINE, pattern="l"),
            InterfaceDecl("credit", Role.USE, pattern="l"),
        ],
    )


def consumer_spec() -> ModuleSpec:
    return ModuleSpec(
        name="consumer",
        inline_source=CONSUMER,
        interfaces=[
            InterfaceDecl("inp", Role.USE, pattern="l"),
            InterfaceDecl("credit_out", Role.DEFINE, pattern="l"),
        ],
    )


def measure_pairs(workers: int, pairs: int, seconds: float) -> float:
    """Aggregate consumed msgs/s over ``pairs`` running credit-loop pairs.

    ``workers > 0`` pins pair *i* to worker slot ``i % workers`` (both
    halves on the same slot, so pushed host-local routes apply);
    ``workers == 0`` runs the same pairs as in-process module threads —
    the single-core baseline the scale-up is measured against.
    """
    bus = (
        SoftwareBus(sleep_scale=0.0, workers=workers)
        if workers
        else SoftwareBus(sleep_scale=0.0)
    )
    try:
        for i in range(pairs):
            placement = f"worker:{i % workers}" if workers else None
            bus.add_module(producer_spec(), instance=f"p{i}", placement=placement)
            bus.add_module(consumer_spec(), instance=f"c{i}", placement=placement)
            bus.add_binding(BindingSpec(f"p{i}", "out", f"c{i}", "inp"))
            bus.add_binding(BindingSpec(f"c{i}", "credit_out", f"p{i}", "credit"))
        for i in range(pairs):
            bus.start_module(f"c{i}")
            bus.start_module(f"p{i}")

        def totals() -> List[int]:
            return [
                int(bus.statics_of(f"c{i}").get("got", 0)) for i in range(pairs)
            ]

        time.sleep(seconds / 2)  # warmup: spawn costs must not pollute the rate
        before = totals()
        start = time.perf_counter()
        time.sleep(seconds)
        after = totals()
        elapsed = time.perf_counter() - start
        return sum(a - b for a, b in zip(after, before)) / elapsed
    finally:
        bus.shutdown()


def build_xlink(workers: int, fanout: int) -> Tuple[SoftwareBus, List[str]]:
    """An in-process sender fanning out over links to worker receivers.

    ``fanout`` receivers land in each of ``workers`` worker processes,
    all bound to the one in-process sender endpoint — so every routed
    message produces ``workers * fanout`` cross-link deliveries.  As in
    :func:`build`, modules are never started; ``route`` is driven
    directly.
    """
    bus = SoftwareBus(sleep_scale=0.0, workers=workers)
    bus.add_module(sender_spec())
    names = []
    for w in range(workers):
        for j in range(fanout):
            name = f"w{w}r{j}"
            bus.add_module(
                receiver_spec(), instance=name, placement=f"worker:{w}"
            )
            bus.add_binding(BindingSpec("sender", "out", name, "inp"))
            names.append(name)
    return bus, names


def measure_xlink(bus: SoftwareBus, names: List[str], seconds: float) -> float:
    """Delivered msgs/s across links, counted by remote queue discards.

    ``discard()`` drains each proxy queue in the worker and returns only
    the count — the periodic drain bounds worker memory, and because a
    link's requests are FIFO behind its coalesced delivery frames, the
    final discard observes every message shipped before it.
    """
    message = Message(
        values=[7], fmt="l", source_instance="sender", source_interface="out"
    )
    queues = [bus.get_module(name).queue("inp") for name in names]
    batch = 200

    def spin(duration: float) -> Tuple[int, float]:
        delivered = 0
        rounds = 0
        start = time.perf_counter()
        deadline = start + duration
        while time.perf_counter() < deadline:
            for _ in range(batch):
                bus.route("sender", "out", message)
            rounds += 1
            if rounds % 10 == 0:  # keep worker memory bounded
                delivered += sum(queue.discard() for queue in queues)
        delivered += sum(queue.discard() for queue in queues)
        return delivered, time.perf_counter() - start

    spin(seconds / 4)  # warmup
    delivered, elapsed = spin(seconds)
    return delivered / elapsed


def run_xproc_tier(seconds: float) -> Dict[str, object]:
    cpus = os.cpu_count() or 1
    workers = max(2, min(4, cpus))
    fanout = 8
    inproc = measure_pairs(workers=0, pairs=1, seconds=seconds)
    pinned = measure_pairs(workers=workers, pairs=workers, seconds=seconds)

    def xlink_run() -> float:
        bus, names = build_xlink(workers=workers, fanout=fanout)
        try:
            return measure_xlink(bus, names, seconds)
        finally:
            bus.shutdown()

    aggregate = xlink_run()
    with batching_disabled():
        unbatched = xlink_run()
    return {
        "cpus": cpus,
        "workers": workers,
        "pairs": workers,
        "fanout_per_worker": fanout,
        "shape": (
            "aggregate: inproc sender -> "
            f"{fanout} receivers in each of {workers} workers (all "
            "deliveries cross a pipe link)"
        ),
        "inproc_pair_baseline": round(inproc, 1),
        "pinned_pairs_aggregate": round(pinned, 1),
        "aggregate": round(aggregate, 1),
        "aggregate_unbatched": round(unbatched, 1),
        "batch_speedup": round(aggregate / unbatched, 2) if unbatched else 0.0,
        "scaleup_vs_inproc_pair": round(aggregate / inproc, 2) if inproc else 0.0,
    }


def test_a4_throughput():
    results = run_all(seconds=0.5)
    report(
        "A4",
        "reconfiguration support should cost only a flag test at run "
        "time; the per-message route path must likewise be O(1) — no "
        "binding-list scan, no lock held across delivery",
        ", ".join(f"{k}: {v:,.0f} msg/s" for k, v in results.items()),
    )
    # Shape, not absolute speed: unrelated bindings must not tax the
    # measured pair (an O(bindings) scan fails this by ~10x), and the
    # per-delivery cost of a 32-way fan-out must stay in the same
    # ballpark as a single delivery.
    assert results["bindings128"] > results["1to1"] / 3
    assert results["fanout32"] > results["1to1"] / 3
    assert results["xhost_fanout8"] > 0


def main(argv: List[str]) -> None:
    quick = "--quick" in argv
    out = "BENCH_bus.json"
    if "--out" in argv:
        out = argv[argv.index("--out") + 1]
    results = run_all(seconds=0.3 if quick else 1.0)
    xproc = run_xproc_tier(seconds=1.0 if quick else 3.0)
    payload = {
        "benchmark": "bench_a4_bus_throughput",
        "unit": "delivered messages/second",
        "quick": quick,
        "meta": bench_meta(batch=batch_settings()),
        "results": results,
        "pre_fast_path_baseline": PRE_FAST_PATH_BASELINE,
        "speedup_vs_pre_fast_path": {
            key: round(value / PRE_FAST_PATH_BASELINE[key], 2)
            for key, value in results.items()
        },
        "xproc": xproc,
    }
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main(sys.argv[1:])
