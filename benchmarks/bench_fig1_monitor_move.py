"""FIG1 — the Monitor example's reconfiguration (paper Section 2, Figure 1).

Paper: the compute module is moved to another machine while the
application executes, mid-recursive-call, and the application keeps
running.  The paper reports no numbers; the claim is feasibility plus a
"reconfiguration delay measured in seconds rather than micro-seconds may
be perfectly acceptable" framing (Section 4).

Measured here: end-to-end move latency on a live three-module
application, with correctness of every displayed value asserted, plus
the captured stack depth proving the move happened mid-recursion.
"""

import time

from repro.apps.monitor import build_monitor_configuration
from repro.bus.bus import SoftwareBus
from repro.reconfig.scripts import move_module
from repro.state.machine import MACHINES

from benchmarks.conftest import report


def _launch():
    config = build_monitor_configuration(
        requests=200, group_size=4, interval=0.005, discard=False
    )
    config.modules["sensor"].attributes["interval"] = "0.0005"
    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("alpha", MACHINES["sparc-like"])
    bus.add_host("beta", MACHINES["vax-like"])
    bus.launch(config, default_host="alpha")
    deadline = time.monotonic() + 20
    display = bus.get_module("display")
    while time.monotonic() < deadline:
        if len(display.mh.statics.get("displayed", [])) >= 2:
            return bus
        bus.check_health()
        time.sleep(0.005)
    raise AssertionError("monitor app made no progress")


def test_fig1_move_compute_mid_recursion(benchmark):
    depths = []

    def setup():
        return (_launch(),), {}

    def run_move(bus):
        reconfig_report = move_module(bus, "compute", machine="beta", timeout=15)
        depths.append(reconfig_report.stack_depth)
        # Verify continuity before tearing down: next values keep flowing.
        display = bus.get_module("display")
        before = len(display.mh.statics["displayed"])
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            values = display.mh.statics["displayed"]
            if len(values) >= before + 3:
                break
            bus.check_health()
            time.sleep(0.005)
        values = display.mh.statics["displayed"]
        expected = [2.5 + 4 * k for k in range(len(values))]
        assert values == expected, "a displayed average was lost or corrupted"
        bus.shutdown()
        return reconfig_report.total_time

    total = benchmark.pedantic(run_move, setup=setup, rounds=3, iterations=1)
    assert all(depth >= 2 for depth in depths), depths
    report(
        "FIG1",
        "compute moves to another machine mid-recursion; application "
        "continues; delay acceptable (sub-second here, 'seconds' fine per paper)",
        f"move completed, stack depths captured {depths}, last total "
        f"{total if total else 'n/a'}",
    )
