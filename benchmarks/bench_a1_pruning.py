"""A1 (ablation/extension) — liveness-based capture pruning.

Paper Section 3: "At a reconfiguration point, data-flow analysis could
be used to determine the set of live variables."  The paper leaves this
future work; we implemented it (``prepare_module(...,
prune_dead_captures=True)``) and measure what it buys: smaller abstract
state and faster capture when frames hold dead data, at zero semantic
cost (equivalence is property-tested in tests/core/test_capture_pruning).
"""

import pytest

from repro.core import prepare_module
from repro.runtime.mh import MH
from repro.runtime.refs import Ref

from benchmarks.conftest import DirectPort, report

#: A frame with a large dead buffer: realistic for modules that stage
#: data, transform it, and only carry a summary forward.
SRC = """\
def main():
    staging = None
    summary = None
    staging = 'x' * 50000
    summary = len(staging)
    finish(summary)
    mh.write('out', 'l', summary)


def finish(x: int):
    mh.reconfig_point('R')
"""


def capture_with(result) -> bytes:
    mh = MH("m")
    port = DirectPort(mh, {})
    mh.attach_port(port)
    mh.request_reconfig()
    namespace = {"mh": mh, "Ref": Ref}
    exec(compile(result.source, "<m>", "exec"), namespace)
    namespace["main"]()
    assert mh.divulged.is_set()
    return mh.outgoing_packet


@pytest.fixture(scope="module")
def variants():
    return {
        "full": prepare_module(SRC, "m"),
        "pruned": prepare_module(SRC, "m", prune_dead_captures=True),
    }


@pytest.mark.benchmark(group="a1-pruning")
def test_a1_capture_full_frame(benchmark, variants):
    packet = benchmark(capture_with, variants["full"])
    assert len(packet) > 50_000


@pytest.mark.benchmark(group="a1-pruning")
def test_a1_capture_pruned_frame(benchmark, variants):
    packet = benchmark(capture_with, variants["pruned"])
    assert len(packet) < 1_000


def test_a1_shape(variants):
    full = len(capture_with(variants["full"]))
    pruned = len(capture_with(variants["pruned"]))
    assert pruned * 10 < full
    report(
        "A1",
        "liveness analysis (suggested by the paper) can shrink the "
        "captured state by excluding dead variables",
        f"abstract packet {full}B unpruned -> {pruned}B pruned "
        f"(x{full / pruned:.0f} smaller on a dead-buffer frame)",
    )
