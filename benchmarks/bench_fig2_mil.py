"""FIG2 — the configuration specification (paper Figure 2).

Paper: the application is described by module specifications plus an
application specification; making the application reconfigurable changed
*only* the compute module spec (the reconfiguration point declaration).

Measured here: the Figure 2 text parses to exactly that structure, and
how fast (MIL parsing sits on the critical path of every launch and of
every obj_cap-style introspection round-trip).
"""

from repro.apps.monitor import MONITOR_MIL
from repro.bus.interfaces import Role
from repro.bus.mil import parse_mil

from benchmarks.conftest import report


def test_fig2_parse_monitor_configuration(benchmark):
    config = benchmark(parse_mil, MONITOR_MIL)

    assert set(config.modules) == {"display", "compute", "sensor"}
    app = config.application
    assert app is not None and app.name == "monitor"
    assert [i.instance for i in app.instances] == ["display", "compute", "sensor"]
    assert len(app.bindings) == 2

    compute = config.modules["compute"]
    assert compute.interface("display").role is Role.SERVER
    assert compute.interface("sensor").role is Role.USE
    assert compute.reconfig_points == ["R"]
    # The only reconfiguration-related declaration lives in compute:
    assert not config.modules["display"].reconfig_points
    assert not config.modules["sensor"].reconfig_points

    report(
        "FIG2",
        "only change for reconfigurability is compute's point declaration",
        "parsed: compute declares R; display/sensor unchanged; "
        "3 modules, 2 bindings",
    )


def test_fig2_describe_reparses(benchmark):
    config = parse_mil(MONITOR_MIL)

    def roundtrip():
        text = "\n".join(m.describe() for m in config.modules.values())
        text += "\n" + config.application.describe().replace(
            "application", "application", 1
        )
        return parse_mil(text)

    again = benchmark(roundtrip)
    assert set(again.modules) == set(config.modules)
