"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure or evaluation claim of the paper
(see DESIGN.md section 4 and EXPERIMENTS.md).  Run with::

    pytest benchmarks/ --benchmark-only

Benchmarks print a short "paper vs measured" line so EXPERIMENTS.md can
be cross-checked against a live run.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, Tuple

import pytest

sys.path.insert(0, ".")  # allow `from tests... import` helpers when run from repo root


def report(experiment: str, claim: str, measured: str) -> None:
    """Emit a paper-vs-measured line into the captured output."""
    print(f"\n[{experiment}] paper: {claim}")
    print(f"[{experiment}] measured: {measured}")


class DirectPort:
    """Minimal port for driving transformed modules without a bus."""

    def __init__(self, mh, queues: Dict[str, List[object]]):
        self.mh = mh
        self.queues = {k: list(v) for k, v in queues.items()}
        self.out: List[Tuple[str, List[object]]] = []
        self.reads = 0
        self.reconfig_after_reads: Optional[int] = None
        self.stop_after_writes: Optional[int] = None

    def read(self, interface, timeout, stop_event):
        value = self.queues[interface].pop(0)
        self.reads += 1
        if self.reconfig_after_reads is not None and self.reads == self.reconfig_after_reads:
            self.mh.request_reconfig()
        return [value]

    def write(self, interface, fmt, values):
        self.out.append((interface, list(values)))
        if self.stop_after_writes is not None and len(self.out) >= self.stop_after_writes:
            self.mh.stop()

    def query_ifmsgs(self, interface):
        return bool(self.queues.get(interface))


@pytest.fixture
def direct_port_factory():
    return DirectPort
