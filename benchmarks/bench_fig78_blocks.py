"""FIG7/8 — capture blocks and restore blocks (paper Figures 7 and 8).

Paper: each node of the reconfiguration graph receives ONE restore block
and one capture block per outgoing edge; reconfiguration points share
the call-edge capture blocks.

Measured here: generated block counts match that formula as the number
of call sites grows, and the codegen cost of flattening scales with
procedure size.
"""

from repro.core import prepare_module

from benchmarks.conftest import report


def make_many_call_sites(call_sites: int) -> str:
    calls = "\n".join(f"    leaf({i})" for i in range(call_sites))
    return (
        "def main():\n"
        f"{calls}\n"
        "\n"
        "def leaf(x: int):\n"
        "    mh.reconfig_point('R')\n"
    )


def test_fig7_one_capture_block_per_edge(benchmark):
    source = make_many_call_sites(20)
    result = benchmark(prepare_module, source, "m")

    # main: 20 call edges -> 20 capture blocks, 1 restore block.
    assert result.reports["main"].call_capture_blocks == 20
    assert result.reports["main"].has_restore_block
    # leaf: 1 reconfiguration capture block, 1 restore block.
    assert result.reports["leaf"].reconfig_capture_blocks == 1
    # Restore block appears once per procedure: one mh.restore call each.
    assert result.source.count("mh.restore('main')") == 1
    assert result.source.count("mh.restore('leaf')") == 1

    report(
        "FIG7/8",
        "one capture block per edge, one restore block per node",
        "20 call edges -> 20 capture blocks + 1 restore block in main",
    )


def test_fig7_points_share_call_capture_blocks(benchmark):
    # Two reconfiguration points, one call site in main: main still gets
    # exactly one capture block ("reconfiguration points can share
    # capture blocks").
    source = (
        "def main():\n"
        "    worker(1)\n"
        "\n"
        "def worker(x: int):\n"
        "    mh.reconfig_point('R1')\n"
        "    helper(x)\n"
        "    mh.reconfig_point('R2')\n"
        "\n"
        "def helper(x: int):\n"
        "    return x\n"
    )
    result = benchmark(prepare_module, source, "m")
    assert result.reports["main"].call_capture_blocks == 1
    assert result.reports["worker"].reconfig_capture_blocks == 2


def test_fig8_restore_dispatch_per_edge(benchmark):
    source = make_many_call_sites(10)
    result = benchmark(prepare_module, source, "m")
    # Figure 8: restore code for each edge originating at the node —
    # main dispatches on 10 locations.
    main_restore = result.source.split("def leaf")[0]
    assert main_restore.count("_mh_vals[0] ==") == 10
