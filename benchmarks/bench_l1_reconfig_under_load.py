"""L1 (load) — what client traffic experiences *through* ``replace()``.

The paper's claim is that a module can be swapped "while the system
runs"; every number published so far measures the replace in isolation.
This benchmark measures the replace from the traffic's side: three
production-shaped workloads stay under sustained load while the driver
fires replaces mid-run, and every latency sample is segmented into
before/during/after windows around the replace span
(``docs/load-harness.md`` explains the windowing and the histogram's
accuracy bounds).

Workloads (``src/repro/loadgen/workloads.py``):

- ``kv_zipfian`` — sharded KV, closed-loop session pool, seeded zipfian
  keys; the hottest shard is moved across architectures.
- ``pipeline`` — open-loop sequence stream through a linear stage
  chain; the middle stage is replaced mid-stream.
- ``monitor_fanout`` — one hub fanning out to 100+ monitor modules
  (the paper's Figure-1 shape at production width); the hub is moved.

Published per window: exact-bounded p50/p99/p999 and the **max stall**
(longest silent gap of any single session — the metric percentiles can
hide), plus per-replace blocked-message counts (``queued_copied``, the
messages the coordinator carried from the old module's queues to the
clone).  Telemetry is *enabled* (1-in-16 span sampling) for the whole
run, so the numbers include the observability tax we actually ship
with.  Invariants (no loss, no duplication, counts conserved) are
enforced by ``workload.verify()`` — a benchmark run that dropped a
message raises instead of publishing.

Run standalone to (re)generate ``BENCH_reconfig_under_load.json``::

    PYTHONPATH=src:. python benchmarks/bench_l1_reconfig_under_load.py [--quick]
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List

from repro.loadgen import (
    FanoutMonitorWorkload,
    KvZipfianWorkload,
    PipelineWorkload,
    run_under_load,
)
from repro.runtime import telemetry

from benchmarks._meta import bench_meta
from benchmarks.conftest import report

#: Workload RNG seed: key streams, op mixes, and schedules all derive
#: from it, so a published run is replayable bit-for-bit.
SEED = 1993
#: Telemetry span sampling during the run (same rate bench_o1 costs at).
SAMPLE = 16


def build_workloads(quick: bool) -> List[object]:
    if quick:
        return [
            KvZipfianWorkload(shards=2, sessions=4, keys=128, seed=SEED),
            PipelineWorkload(stages=3, rate_per_s=200.0, seed=SEED),
            FanoutMonitorWorkload(monitors=24, rate_per_s=150.0, seed=SEED),
        ]
    return [
        KvZipfianWorkload(shards=4, sessions=8, keys=256, seed=SEED),
        PipelineWorkload(stages=4, rate_per_s=300.0, seed=SEED),
        # ≥ 100 modules: 110 monitors + hub + loader = 112.
        FanoutMonitorWorkload(monitors=110, rate_per_s=200.0, seed=SEED),
    ]


def run_all(quick: bool) -> Dict[str, object]:
    warmup_s = 0.4 if quick else 1.0
    measure_s = 2.0 if quick else 6.0
    replaces = 1 if quick else 3
    telemetry.enable(capacity=65536, sample=SAMPLE)
    try:
        results = {}
        for workload in build_workloads(quick):
            results[workload.name] = run_under_load(
                workload,
                warmup_s=warmup_s,
                measure_s=measure_s,
                replaces=replaces,
            )
    finally:
        telemetry.disable()
    return {
        "measure_s": measure_s,
        "replaces_per_workload": replaces,
        "workloads": results,
    }


def _summary_line(results: Dict[str, object]) -> str:
    parts = []
    for name, block in results["workloads"].items():
        before = block["windows"]["before"]
        during = block["windows"]["during"]
        parts.append(
            f"{name}: p99 {before.get('p99_ms', 0)}ms -> "
            f"{during.get('p99_ms', 'n/a')}ms during, "
            f"stall {block['max_stall_ms']}ms, "
            f"{block['blocked_messages']} blocked"
        )
    return "; ".join(parts)


def test_l1_reconfig_under_load():
    results = run_all(quick=True)
    report(
        "L1",
        "module replacement happens while the system runs — traffic "
        "through the replace must see a bounded stall and lose nothing",
        _summary_line(results),
    )
    for name, block in results["workloads"].items():
        invariants = block["invariants"]
        assert invariants["no_loss"] and invariants["no_duplication"], name
        assert block["windows"]["before"]["count"] > 0, name
        assert block["windows"]["after"]["count"] > 0, name


def main(argv: List[str]) -> None:
    quick = "--quick" in argv
    out = "BENCH_reconfig_under_load.json"
    if "--out" in argv:
        out = argv[argv.index("--out") + 1]
    results = run_all(quick)
    payload = {
        "benchmark": "bench_l1_reconfig_under_load",
        "unit": "latency ms per window; stalls ms; blocked messages",
        "quick": quick,
        "meta": bench_meta(
            seed=SEED,
            sample=SAMPLE,
            telemetry="enabled",
            replaces_per_workload=results["replaces_per_workload"],
            measure_s=results["measure_s"],
        ),
        "results": results,
    }
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"\n[L1] {_summary_line(results)}")


if __name__ == "__main__":
    main(sys.argv[1:])
