"""FIG3/4 — transforming the compute module (paper Figures 3 and 4).

Paper: the original compute module (Figure 3) is automatically prepared
for reconfiguration (Figure 4): capture blocks after each call edge, a
restore block at the top of each instrumented procedure, labels, and the
flag tests.  Preparation happens when the program is compiled — ahead of
any reconfiguration.

Measured here: the transformation reproduces Figure 4's structure
exactly (block counts per procedure), the transformed module behaves
identically absent reconfiguration, and the ahead-of-time preparation
cost.
"""

from repro.apps.monitor import COMPUTE_SOURCE
from repro.core import prepare_module
from repro.runtime.mh import MH
from repro.runtime.refs import Ref

from benchmarks.conftest import DirectPort, report


def test_fig34_prepare_compute_module(benchmark):
    result = benchmark(prepare_module, COMPUTE_SOURCE, "compute")

    # Figure 4's structure:
    # - main: capture blocks after both compute() call sites, no
    #   reconfiguration block, a restore block with clone check
    # - compute: one capture block after the recursive call, one
    #   reconfiguration block before R, a restore block
    assert result.reports["main"].call_capture_blocks == 2
    assert result.reports["main"].reconfig_capture_blocks == 0
    assert result.reports["compute"].call_capture_blocks == 1
    assert result.reports["compute"].reconfig_capture_blocks == 1
    assert result.reports["main"].has_restore_block
    assert result.reports["compute"].has_restore_block
    assert result.source.count("mh.getstatus() == 'clone'") == 1

    graph = result.recon_graph
    assert [e.number for e in graph.edges] == [1, 2, 3, 4]
    assert graph.edges[3].kind == "reconfig"

    report(
        "FIG3/4",
        "capture blocks: main x2 (after L1, L2), compute x1 (after L3) "
        "+ reconfig block before R; restore blocks in both",
        f"main: {result.reports['main'].call_capture_blocks} capture, "
        f"compute: {result.reports['compute'].call_capture_blocks}+"
        f"{result.reports['compute'].reconfig_capture_blocks}; edges 1-4",
    )


def test_fig34_transformed_module_transparent(benchmark):
    """The prepared module computes the same averages as the original."""
    result = prepare_module(COMPUTE_SOURCE, "compute")
    code = compile(result.source, "<compute>", "exec")

    def run_prepared():
        mh = MH("compute")
        mh.config["idle_interval"] = "0"
        port = DirectPort(mh, {"display": [4], "sensor": [10, 20, 30, 40]})
        port.stop_after_writes = 1
        mh.attach_port(port)
        namespace = {"mh": mh, "Ref": Ref}
        exec(code, namespace)
        from repro.runtime.mh import ModuleStop

        try:
            namespace["main"]()
        except ModuleStop:
            pass
        return port.out

    out = benchmark(run_prepared)
    assert out == [("display", [25.0])]
