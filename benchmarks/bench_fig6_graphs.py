"""FIG6 — static call graph and reconfiguration graph (paper Figure 6).

Paper: the reconfiguration graph is the subgraph of the static call
graph on paths main -> reconfiguration points, augmented with the
reconfig node and consecutively numbered edges.

Measured here: construction reproduces the expected node/edge structure
for the paper's sample shape and scales to programs with hundreds of
procedures (graph construction is part of the ahead-of-time preparation
cost).
"""

import ast

from repro.core.callgraph import build_call_graph
from repro.core.recongraph import RECONFIG_NODE, build_reconfiguration_graph

from benchmarks.conftest import report

FIGURE6_SAMPLE = """\
def main():
    x = 0
    a(x)
    b(x)
    a(x + 1)


def a(x: int):
    mh.reconfig_point('R1')
    b(x)


def b(x: int):
    y = x * 2
    mh.reconfig_point('R2')
    helper(y)


def helper(y: int):
    return y + 1
"""


def make_chain_program(length: int, fanout: int = 2) -> str:
    """main -> p0 -> p1 -> ... -> p{length-1} with a point at the leaf,
    plus `fanout` dead helper procedures per level."""
    lines = ["def main():", "    p0(0)", ""]
    for i in range(length):
        lines.append(f"def p{i}(x: int):")
        if i + 1 < length:
            lines.append(f"    p{i + 1}(x + 1)")
        else:
            lines.append("    mh.reconfig_point('R')")
        lines.append("")
        for j in range(fanout):
            lines.append(f"def helper_{i}_{j}(x):")
            lines.append("    return x")
            lines.append("")
    return "\n".join(lines)


def test_fig6_sample_program_structure(benchmark):
    def build():
        tree = ast.parse(FIGURE6_SAMPLE)
        call_graph = build_call_graph(tree)
        return call_graph, build_reconfiguration_graph(call_graph)

    call_graph, recon = benchmark(build)

    # Static call graph: every procedure, one edge per call site.
    assert set(call_graph.functions) == {"main", "a", "b", "helper"}
    assert len(call_graph.sites_between("main", "a")) == 2

    # Reconfiguration graph: helper excluded, edges numbered 1..6
    # (main->a, main->b, main->a, a->R1? ordering: per node by line).
    assert recon.nodes == ["main", "a", "b"]
    assert [e.number for e in recon.edges] == [1, 2, 3, 4, 5, 6]
    assert sum(1 for e in recon.edges if e.target == RECONFIG_NODE) == 2

    report(
        "FIG6",
        "reconfig graph = main/a/b (helper excluded), numbered edges "
        "incl. one per point",
        f"nodes {recon.nodes}, {len(recon.edges)} edges, "
        f"{len(recon.reconfig_edges())} reconfig edges",
    )


def test_fig6_graph_construction_scales(benchmark):
    source = make_chain_program(length=100, fanout=2)
    tree = ast.parse(source)

    def build():
        call_graph = build_call_graph(tree)
        return build_reconfiguration_graph(call_graph)

    recon = benchmark(build)
    # 1 main + 100 chain procedures instrumented; 200 helpers excluded.
    assert len(recon.nodes) == 101
    assert len(recon.edges) == 101  # 100 call edges + 1 reconfig edge
