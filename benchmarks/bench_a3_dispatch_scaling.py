"""A3 (honest-cost ablation) — dispatch-loop overhead vs procedure shape.

The paper's C implementation pays only flag tests at run time; our goto
emulation additionally pays the flattened dispatch, whose ``elif`` chain
is linear in the number of *basic blocks* per transition.  Two fillers
tease that apart:

- straight-line statements collapse into a single block, so their
  dispatch overhead amortises to ~1x the original;
- control-flow-dense bodies (many tiny ``if`` blocks) multiply blocks
  and pay the chain on every transition.

Conclusion for EXPERIMENTS.md: the Python-specific overhead concentrates
in control-flow-dense instrumented procedures — one more reason to
follow the paper's Section 4 advice and keep reconfiguration points out
of big hot loops.
"""

import pytest

from repro.core import prepare_module
from repro.runtime.mh import MH
from repro.runtime.refs import Ref

from benchmarks.conftest import DirectPort, report

SIZES = [5, 25, 100]
ITERS = 2_000


def make_workload(units: int, blocky: bool) -> str:
    if blocky:
        filler = "\n".join(
            f"        if i >= 0:\n            x{k} = i + {k}"
            for k in range(units)
        )
    else:
        filler = "\n".join(f"        x{k} = i + {k}" for k in range(units))
    return (
        "def main():\n"
        "    n = mh.read1('inp')\n"
        "    i = 0\n"
        "    acc = 0\n"
        "    while i < n:\n"
        "        mh.reconfig_point('P')\n"
        f"{filler}\n"
        "        acc = acc + i\n"
        "        i = i + 1\n"
        "    mh.write('out', 'l', acc)\n"
    )


def compile_pair(units: int, blocky: bool):
    source = make_workload(units, blocky)
    prepared = compile(prepare_module(source, "m").source, "<p>", "exec")
    original = compile(
        source.replace("        mh.reconfig_point('P')\n", ""), "<o>", "exec"
    )
    return prepared, original


def run(code) -> int:
    mh = MH("m")
    port = DirectPort(mh, {"inp": [ITERS]})
    mh.attach_port(port)
    namespace = {"mh": mh, "Ref": Ref}
    exec(code, namespace)
    namespace["main"]()
    return port.out[0][1][0]


@pytest.mark.benchmark(group="a3-dispatch")
@pytest.mark.parametrize("units", SIZES)
@pytest.mark.parametrize("shape", ["straightline", "blocky"])
def test_a3_prepared(benchmark, units, shape):
    prepared, _ = compile_pair(units, blocky=(shape == "blocky"))
    result = benchmark(run, prepared)
    assert result == sum(range(ITERS))


def _factor(units: int, blocky: bool) -> float:
    import time

    prepared, original = compile_pair(units, blocky)

    def best(code):
        times = []
        for _ in range(3):
            start = time.perf_counter()
            run(code)
            times.append(time.perf_counter() - start)
        return min(times)

    return best(prepared) / best(original)


def test_a3_shape():
    straight = {units: _factor(units, blocky=False) for units in SIZES}
    blocky = {units: _factor(units, blocky=True) for units in SIZES}

    report(
        "A3",
        "our goto emulation costs per-block dispatch on top of the "
        "paper's flag test; straight-line code amortises it away, "
        "control-flow-dense code pays it",
        f"prepared/original factor — straight-line: "
        f"{ {k: round(v, 2) for k, v in straight.items()} }, "
        f"blocky: { {k: round(v, 2) for k, v in blocky.items()} }",
    )
    # Straight-line overhead stays small; blocky overhead exceeds it.
    assert straight[100] < 2.0
    assert blocky[100] > straight[100]
