"""CI regression gate: compare a quick benchmark run to committed numbers.

Usage::

    python benchmarks/check_regression.py \
        BENCH_bus.json BENCH_bus_multiproc.json xproc.aggregate 0.85

Reads the same dotted path out of both payloads and exits non-zero when
``measured < committed * floor_ratio``.  Kept as a script (not inline
YAML) so the comparison is testable and the workflow stays readable;
the caller decides the retry policy — quick windows on shared CI
runners are noisy, so gates should re-measure once before failing the
job.
"""

from __future__ import annotations

import json
import sys
from typing import List


def dig(payload: object, dotted: str) -> float:
    value = payload
    for part in dotted.split("."):
        value = value[part]  # type: ignore[index]
    return float(value)  # type: ignore[arg-type]


def main(argv: List[str]) -> int:
    if len(argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    committed_path, measured_path, dotted, ratio_raw = argv
    with open(committed_path, encoding="utf-8") as handle:
        committed = dig(json.load(handle), dotted)
    with open(measured_path, encoding="utf-8") as handle:
        measured = dig(json.load(handle), dotted)
    floor = committed * float(ratio_raw)
    print(
        f"{dotted}: measured {measured:,.0f} vs committed {committed:,.0f} "
        f"(floor {floor:,.0f})"
    )
    if measured < floor:
        print(
            f"REGRESSION: {dotted} {measured:,.0f} < {floor:,.0f} "
            f"({float(ratio_raw):.0%} of committed)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
