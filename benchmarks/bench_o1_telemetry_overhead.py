"""O1 (observability) — overhead of the telemetry flight recorder.

The paper's economic claim is that reconfiguration support costs "merely
that of periodically testing the flags" at steady state.  Observability
must not quietly take that property back, so this benchmark pins down
what the flight recorder costs on the bus message hot path
(``bench_a4``'s 1-to-1 scenario) in three ways:

- ``disabled`` — throughput after an enable/disable cycle (the routing
  table rebuilt with no recorder installed) versus the never-enabled
  ``baseline``.  Disabled-mode instrumentation is compiled *out* of the
  routing table at rebuild time, so this must be pure measurement noise;
  the benchmark asserts < 3% and additionally verifies structurally that
  the disabled fast path holds raw ``MessageQueue.put`` bound methods —
  zero wrappers, zero flag tests.
- ``enabled`` — throughput with counting delivery wrappers compiled in
  (two counter increments + one queue-depth sample per message).  This
  is the price of *turning telemetry on*, reported for EXPERIMENTS.
- ``guard_ns`` — the cost of the ``telemetry.recorder is None`` guard
  used by the sites that cannot compile themselves out (faults-style
  one-attribute-load-plus-branch idiom), measured directly.

It also times the Figure-1 monitor move (feed-driven, same harness as
the chaos suite) with telemetry on and off, since the replace path is
where spans actually get recorded.

Run standalone to (re)generate ``BENCH_telemetry.json``::

    PYTHONPATH=src:. python benchmarks/bench_o1_telemetry_overhead.py [--quick]
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Dict, List, Tuple

from repro.bus.queues import MessageQueue
from repro.runtime import telemetry

from benchmarks.bench_a4_bus_throughput import build, measure
from benchmarks.conftest import report

#: Disabled-mode telemetry must cost less than this on bus throughput.
DISABLED_OVERHEAD_LIMIT_PCT = 3.0


def _throughput(seconds: float, repeats: int = 3) -> float:
    """Best-of-``repeats`` 1-to-1 delivered msgs/s on a fresh bus."""
    best = 0.0
    for _ in range(repeats):
        bus, names = build(receivers=1)
        try:
            best = max(best, measure(bus, names, seconds))
        finally:
            bus.shutdown()
    return best


def assert_disabled_path_uninstrumented() -> None:
    """The disabled fast path must hold raw queue ``put`` bound methods.

    This is the structural half of the < 3% claim: with no recorder
    installed, ``_rebuild_routing`` compiles the exact same delivery
    closures as before telemetry existed, so there is nothing on the
    per-message path to measure.
    """
    assert telemetry.recorder is None
    bus, _ = build(receivers=1)
    try:
        table = bus._rebuild_routing()
        entry = table["sender"]["out"]
        assert entry.local_puts, "1to1 scenario must take the local fast path"
        for put in entry.local_puts:
            assert getattr(put, "__func__", None) is MessageQueue.put, (
                f"disabled routing table holds a wrapper {put!r}; "
                f"the disabled hot path is no longer free"
            )
    finally:
        bus.shutdown()


def guard_cost_ns(iterations: int = 1_000_000) -> float:
    """Per-call cost of the disabled-mode guard (attribute load + branch)."""
    items = [None] * iterations
    start = time.perf_counter()
    for _ in items:
        rec = telemetry.recorder
        if rec is not None:  # pragma: no cover - disabled in this bench
            raise AssertionError("recorder unexpectedly installed")
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in items:
        pass
    empty = time.perf_counter() - start
    return max(0.0, (guarded - empty) / iterations * 1e9)


def measure_modes(seconds: float) -> Dict[str, float]:
    """baseline (never enabled) vs enabled vs disabled-after-cycle."""
    assert telemetry.recorder is None
    results: Dict[str, float] = {}
    results["baseline"] = _throughput(seconds)
    telemetry.enable(capacity=1024)
    try:
        results["enabled"] = _throughput(seconds)
    finally:
        telemetry.disable()
    results["disabled"] = _throughput(seconds)
    return results


def measure_fig1_move(enabled: bool, iterations: int) -> Tuple[float, float]:
    """(best_ms, mean_ms) total replace time for the fig-1 monitor move."""
    from repro.reconfig.scripts import move_module
    from tests.reconfig.helpers import (
        feed_sensor,
        launch_manual_monitor,
        wait_signalled,
    )

    if enabled:
        telemetry.enable(capacity=16384)
    try:
        times: List[float] = []
        for _ in range(iterations):
            bus = launch_manual_monitor(requests=2, group_size=2)
            try:
                outcome: Dict[str, object] = {}

                def run() -> None:
                    outcome["report"] = move_module(
                        bus, "compute", machine="beta", timeout=15
                    )

                worker = threading.Thread(target=run)
                worker.start()
                wait_signalled(bus, "compute")
                feed_sensor(bus, 1)
                worker.join(30)
                times.append(outcome["report"].total_time * 1000.0)
            finally:
                bus.shutdown()
        return min(times), sum(times) / len(times)
    finally:
        if enabled:
            telemetry.disable()


def overhead_pct(baseline: float, other: float) -> float:
    if baseline <= 0:
        return 0.0
    return max(0.0, (baseline - other) / baseline * 100.0)


def run_all(seconds: float, move_iterations: int) -> Dict[str, object]:
    assert_disabled_path_uninstrumented()
    modes = measure_modes(seconds)
    move_off = measure_fig1_move(enabled=False, iterations=move_iterations)
    move_on = measure_fig1_move(enabled=True, iterations=move_iterations)
    return {
        "bus_msgs_per_sec": {k: round(v, 1) for k, v in modes.items()},
        "disabled_overhead_pct": round(
            overhead_pct(modes["baseline"], modes["disabled"]), 2
        ),
        "enabled_overhead_pct": round(
            overhead_pct(modes["baseline"], modes["enabled"]), 2
        ),
        "guard_ns": round(guard_cost_ns(), 2),
        "fig1_move_ms": {
            "disabled": {
                "best": round(move_off[0], 3),
                "mean": round(move_off[1], 3),
            },
            "enabled": {
                "best": round(move_on[0], 3),
                "mean": round(move_on[1], 3),
            },
        },
    }


def test_o1_telemetry_overhead():
    results = run_all(seconds=0.3, move_iterations=3)
    report(
        "O1",
        '"the run-time cost is merely that of periodically testing the '
        'flags" — telemetry must preserve that: disabled-mode '
        "instrumentation compiles out of the message path entirely",
        f"disabled {results['disabled_overhead_pct']}% / enabled "
        f"{results['enabled_overhead_pct']}% bus overhead, guard "
        f"{results['guard_ns']}ns, fig-1 move "
        f"{results['fig1_move_ms']['disabled']['best']} -> "
        f"{results['fig1_move_ms']['enabled']['best']}ms",
    )
    assert results["disabled_overhead_pct"] < DISABLED_OVERHEAD_LIMIT_PCT


def main(argv: List[str]) -> None:
    quick = "--quick" in argv
    out = "BENCH_telemetry.json"
    if "--out" in argv:
        out = argv[argv.index("--out") + 1]
    results = run_all(
        seconds=0.3 if quick else 1.0, move_iterations=3 if quick else 10
    )
    payload = {
        "benchmark": "bench_o1_telemetry_overhead",
        "unit": "delivered messages/second; move times in ms",
        "quick": quick,
        "disabled_overhead_limit_pct": DISABLED_OVERHEAD_LIMIT_PCT,
        "results": results,
    }
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    if results["disabled_overhead_pct"] >= DISABLED_OVERHEAD_LIMIT_PCT:
        print(
            f"FAIL: disabled-mode overhead "
            f"{results['disabled_overhead_pct']}% >= "
            f"{DISABLED_OVERHEAD_LIMIT_PCT}%",
            file=sys.stderr,
        )
        raise SystemExit(1)


if __name__ == "__main__":
    main(sys.argv[1:])
