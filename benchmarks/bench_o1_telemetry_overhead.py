"""O1 (observability) — overhead of the telemetry flight recorder.

The paper's economic claim is that reconfiguration support costs "merely
that of periodically testing the flags" at steady state.  Observability
must not quietly take that property back, so this benchmark pins down
what the flight recorder costs on the bus message hot path
(``bench_a4``'s 1-to-1 scenario) in three ways:

- ``disabled`` — throughput after an enable/disable cycle (the routing
  table rebuilt with no recorder installed) versus the never-enabled
  ``baseline``.  Disabled-mode instrumentation is compiled *out* of the
  routing table at rebuild time, so this must be pure measurement noise;
  the benchmark asserts < 3% and additionally verifies structurally that
  the disabled fast path holds raw ``MessageQueue.put`` bound methods —
  zero wrappers, zero flag tests.
- ``enabled`` — throughput with the recorder installed: delivery counts
  kept in-lock by the swapped-in ``RecordingMessageQueue`` classes,
  ``bus.routed`` derived lazily from queue cells, and per-message spans
  sampled 1-in-``sample``.  Asserted < 10% (down from ~80% with PR 4's
  per-delivery counting closures).
- ``guard_ns`` — the cost of the ``telemetry.recorder is None`` guard
  used by the sites that cannot compile themselves out (faults-style
  one-attribute-load-plus-branch idiom), measured directly.

Methodology: one persistent bus, modes switched in place, and every
enabled/disabled segment *straddled* between two baseline segments
whose mean it is compared against (``b1 e b2 d b3`` per round, medians
across rounds) — a sequential all-baseline-then-all-enabled layout let
slow container drift show "disabled" beating "baseline" by double
digits.  ``cpus`` and the sampling rate are recorded so trajectories
across containers stay comparable.

It also times the Figure-1 monitor move (feed-driven, same harness as
the chaos suite) with telemetry on and off, since the replace path is
where spans actually get recorded; the move runs unsampled
(``sample=1``) to show full-fidelity recording does not tax it.

Run standalone to (re)generate ``BENCH_telemetry.json``::

    PYTHONPATH=src:. python benchmarks/bench_o1_telemetry_overhead.py [--quick]
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import threading
import time
from typing import Dict, List, Tuple

from repro.bus.queues import MessageQueue
from repro.runtime import telemetry

from benchmarks._meta import bench_meta
from benchmarks.bench_a4_bus_throughput import build
from benchmarks.conftest import report

#: Disabled-mode telemetry must cost less than this on bus throughput.
DISABLED_OVERHEAD_LIMIT_PCT = 3.0
#: Enabled-mode telemetry must cost less than this on bus throughput.
ENABLED_OVERHEAD_LIMIT_PCT = 10.0
#: 1-in-N sampling of top-level per-message spans in the enabled runs
#: (replace trees are always recorded in full; see docs/telemetry.md).
SAMPLE = 16
#: Heartbeat cadence for the tracing+health tier — the production
#: default, measured explicitly here and off everywhere else.
HEARTBEAT_INTERVAL_S = 0.2


def assert_disabled_path_uninstrumented() -> None:
    """The disabled fast path must hold raw queue ``put`` bound methods.

    This is the structural half of the < 3% claim: with no recorder
    installed, ``_rebuild_routing`` compiles the exact same delivery
    closures as before telemetry existed, so there is nothing on the
    per-message path to measure.
    """
    assert telemetry.recorder is None
    bus, _ = build(receivers=1)
    try:
        table = bus._rebuild_routing()
        entry = table["sender"]["out"]
        assert entry.local_puts, "1to1 scenario must take the local fast path"
        for put in entry.local_puts:
            assert getattr(put, "__func__", None) is MessageQueue.put, (
                f"disabled routing table holds a wrapper {put!r}; "
                f"the disabled hot path is no longer free"
            )
    finally:
        bus.shutdown()


def guard_cost_ns(iterations: int = 1_000_000) -> float:
    """Per-call cost of the disabled-mode guard (attribute load + branch)."""
    items = [None] * iterations
    start = time.perf_counter()
    for _ in items:
        rec = telemetry.recorder
        if rec is not None:  # pragma: no cover - disabled in this bench
            raise AssertionError("recorder unexpectedly installed")
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in items:
        pass
    empty = time.perf_counter() - start
    return max(0.0, (guarded - empty) / iterations * 1e9)


def measure_modes(seconds: float, rounds: int) -> Dict[str, object]:
    """Straddled baseline / enabled / disabled trials, median summary.

    One persistent 1-to-1 bus serves every trial; modes are switched
    *in place* (``telemetry.enable()``/``disable()`` plus invalidating
    the routing table so the delivery path recompiles for the new mode).
    Each round runs five straddled segments::

        b1   enabled   b2   disabled   b3

    and each mode's overhead is computed against the *mean of its two
    neighbouring baseline segments*.  Container speed on shared 1-core
    runners drifts by double-digit percentages over a few seconds;
    straddling cancels linear drift within a round, and medians across
    rounds kill the remaining outliers.  (A sequential layout — all
    baseline trials, then all enabled — reported "disabled" beating
    "baseline" by double digits, which is structurally impossible.)

    Note ``b2``/``b3`` run after an enable/disable cycle.  By the
    structural guarantee checked in ``assert_disabled_path_uninstrumented``
    that configuration is byte-identical to never-enabled, so they are
    valid baseline segments — and the ``disabled`` metric is precisely
    the claim that this guarantee holds dynamically too.
    """
    import gc

    from repro.bus.message import Message

    assert telemetry.recorder is None
    bus, names = build(receivers=1)
    try:
        message = Message(
            values=[7], fmt="l", source_instance="sender", source_interface="out"
        )
        queue = bus.get_module(names[0]).queue("inp")

        def spin(duration: float) -> float:
            sent = 0
            start = time.perf_counter()
            deadline = start + duration
            while time.perf_counter() < deadline:
                for _ in range(200):
                    bus.route("sender", "out", message)
                sent += 200
                queue.drain()
            return sent / (time.perf_counter() - start)

        def set_enabled(on: bool) -> None:
            if on:
                telemetry.enable(capacity=1024, sample=SAMPLE)
            else:
                telemetry.disable()
            # Recompile the delivery path for the new mode: rebinds the
            # per-destination puts against the (possibly class-swapped)
            # queues, exactly as a live bus does on its next route().
            bus._routing_table = None

        segment = max(0.05, seconds / 2.0)
        spin(0.3)  # interpreter/branch-predictor warm-up
        rates: Dict[str, List[float]] = {
            "baseline": [],
            "enabled": [],
            "disabled": [],
        }
        enabled_pcts: List[float] = []
        disabled_pcts: List[float] = []
        for _ in range(rounds):
            gc.collect()
            b1 = spin(segment)
            set_enabled(True)
            enabled = spin(segment)
            set_enabled(False)
            b2 = spin(segment)
            set_enabled(True)
            set_enabled(False)
            disabled = spin(segment)
            b3 = spin(segment)
            rates["baseline"].extend((b1, b2, b3))
            rates["enabled"].append(enabled)
            rates["disabled"].append(disabled)
            enabled_pcts.append((1.0 - enabled / ((b1 + b2) / 2.0)) * 100.0)
            disabled_pcts.append((1.0 - disabled / ((b2 + b3) / 2.0)) * 100.0)
    finally:
        if telemetry.recorder is not None:
            telemetry.disable()
        bus.shutdown()
    return {
        "rates": {k: round(statistics.median(v), 1) for k, v in rates.items()},
        "enabled_overhead_pct": max(0.0, round(statistics.median(enabled_pcts), 2)),
        "disabled_overhead_pct": max(0.0, round(statistics.median(disabled_pcts), 2)),
        "rounds": rounds,
    }


def measure_tracing_health(seconds: float, rounds: int) -> Dict[str, object]:
    """Enabled-mode overhead with the full observability plane live.

    PR 9 added two always-on costs to enabled mode: trace-context
    propagation (a trailer on link requests, Lamport ticks on recorded
    spans) and the health plane (a worker heartbeating over its pipe,
    the bus-side monitor recording arrivals on the dispatcher thread).
    Neither touches the inproc delivery hot path directly, and this tier
    is the proof: same straddled ``b1 e b2`` layout as
    :func:`measure_modes`, but the bus owns a spawned worker beating at
    the default 200 ms cadence while the enabled segment runs.  On the
     1-core CI containers every beat is a genuine preemption of the
    measured loop (worker wakes, encodes, pipes; dispatcher decodes),
    so the default cadence — what production pays — is what the gate
    bounds.  Heartbeats stay off in every other tier — and off by
    default everywhere — precisely so this one measures their cost
    explicitly.
    """
    import gc

    from repro.bus.interfaces import InterfaceDecl, Role
    from repro.bus.message import Message
    from repro.bus.spec import BindingSpec, ModuleSpec
    from repro.bus.bus import SoftwareBus
    from repro.state.machine import MACHINES

    from benchmarks.bench_a4_bus_throughput import receiver_spec, sender_spec

    assert telemetry.recorder is None
    bus = SoftwareBus(sleep_scale=0.0, workers=1)
    try:
        bus.add_host("local", MACHINES["modern-64"])
        bus.add_module(sender_spec(), machine="local")
        bus.add_module(receiver_spec(), instance="r0", machine="local")
        bus.add_binding(BindingSpec("sender", "out", "r0", "inp"))
        # Never started; placing it is what spawns the worker process
        # whose ModuleHost will heartbeat during the enabled segments.
        bus.add_module(
            ModuleSpec(
                name="idle",
                inline_source="def main():\n    mh.sleep(0.01)\n",
                interfaces=[
                    InterfaceDecl(name="inp", role=Role.USE, pattern="l")
                ],
            ),
            instance="idle",
            placement="worker:0",
        )
        message = Message(
            values=[7], fmt="l", source_instance="sender", source_interface="out"
        )
        queue = bus.get_module("r0").queue("inp")

        def spin(duration: float) -> float:
            sent = 0
            start = time.perf_counter()
            deadline = start + duration
            while time.perf_counter() < deadline:
                for _ in range(200):
                    bus.route("sender", "out", message)
                sent += 200
                queue.drain()
            return sent / (time.perf_counter() - start)

        def set_plane(on: bool) -> None:
            if on:
                telemetry.enable(capacity=1024, sample=SAMPLE)
                bus.enable_health(interval=HEARTBEAT_INTERVAL_S)
            else:
                bus.disable_health()
                telemetry.disable()
            bus._routing_table = None

        segment = max(0.05, seconds / 2.0)
        spin(0.3)
        pcts: List[float] = []
        rates: List[float] = []
        baselines: List[float] = []
        for _ in range(rounds):
            gc.collect()
            b1 = spin(segment)
            set_plane(True)
            on_rate = spin(segment)
            set_plane(False)
            b2 = spin(segment)
            baselines.extend((b1, b2))
            rates.append(on_rate)
            pcts.append((1.0 - on_rate / ((b1 + b2) / 2.0)) * 100.0)
    finally:
        if telemetry.recorder is not None:
            telemetry.disable()
        bus.shutdown()
    return {
        "baseline_msgs_per_sec": round(statistics.median(baselines), 1),
        "enabled_msgs_per_sec": round(statistics.median(rates), 1),
        "overhead_pct": max(0.0, round(statistics.median(pcts), 2)),
        "heartbeat_interval_s": HEARTBEAT_INTERVAL_S,
        "rounds": rounds,
    }


def measure_fig1_move(enabled: bool, iterations: int) -> Tuple[float, float]:
    """(best_ms, mean_ms) total replace time for the fig-1 monitor move."""
    from repro.reconfig.scripts import move_module
    from tests.reconfig.helpers import (
        feed_sensor,
        launch_manual_monitor,
        wait_signalled,
    )

    if enabled:
        telemetry.enable(capacity=16384)
    try:
        times: List[float] = []
        for _ in range(iterations):
            bus = launch_manual_monitor(requests=2, group_size=2)
            try:
                outcome: Dict[str, object] = {}

                def run() -> None:
                    outcome["report"] = move_module(
                        bus, "compute", machine="beta", timeout=15
                    )

                worker = threading.Thread(target=run)
                worker.start()
                wait_signalled(bus, "compute")
                feed_sensor(bus, 1)
                worker.join(30)
                times.append(outcome["report"].total_time * 1000.0)
            finally:
                bus.shutdown()
        return min(times), sum(times) / len(times)
    finally:
        if enabled:
            telemetry.disable()


def run_all(seconds: float, rounds: int, move_iterations: int) -> Dict[str, object]:
    assert_disabled_path_uninstrumented()
    modes = measure_modes(seconds, rounds)
    tracing_health = measure_tracing_health(seconds, rounds)
    move_off = measure_fig1_move(enabled=False, iterations=move_iterations)
    move_on = measure_fig1_move(enabled=True, iterations=move_iterations)
    return {
        "bus_msgs_per_sec": modes["rates"],
        "rounds": modes["rounds"],
        "disabled_overhead_pct": modes["disabled_overhead_pct"],
        "enabled_overhead_pct": modes["enabled_overhead_pct"],
        "tracing_health": tracing_health,
        "enabled_tracing_health_overhead_pct": tracing_health["overhead_pct"],
        "guard_ns": round(guard_cost_ns(), 2),
        "fig1_move_ms": {
            "disabled": {
                "best": round(move_off[0], 3),
                "mean": round(move_off[1], 3),
            },
            "enabled": {
                "best": round(move_on[0], 3),
                "mean": round(move_on[1], 3),
            },
        },
    }


def test_o1_telemetry_overhead():
    # The mode sweep needs full-size segments even in the quick/test
    # configuration: 0.125s segments on a busy 1-core container put
    # double-digit noise on a ~2.5% effect.
    results = run_all(seconds=0.5, rounds=9, move_iterations=3)
    report(
        "O1",
        '"the run-time cost is merely that of periodically testing the '
        'flags" — telemetry must preserve that: disabled-mode '
        "instrumentation compiles out of the message path entirely, and "
        "enabled mode counts in-queue, in-lock",
        f"disabled {results['disabled_overhead_pct']}% / enabled "
        f"{results['enabled_overhead_pct']}% / with tracing+heartbeats "
        f"{results['enabled_tracing_health_overhead_pct']}% bus overhead, "
        f"guard {results['guard_ns']}ns, fig-1 move "
        f"{results['fig1_move_ms']['disabled']['best']} -> "
        f"{results['fig1_move_ms']['enabled']['best']}ms",
    )
    assert results["disabled_overhead_pct"] < DISABLED_OVERHEAD_LIMIT_PCT
    assert results["enabled_overhead_pct"] < ENABLED_OVERHEAD_LIMIT_PCT
    assert (
        results["enabled_tracing_health_overhead_pct"]
        < ENABLED_OVERHEAD_LIMIT_PCT
    )


def main(argv: List[str]) -> None:
    quick = "--quick" in argv
    out = "BENCH_telemetry.json"
    if "--out" in argv:
        out = argv[argv.index("--out") + 1]
    results = run_all(
        seconds=0.5,
        rounds=9,
        move_iterations=3 if quick else 10,
    )
    payload = {
        "benchmark": "bench_o1_telemetry_overhead",
        "unit": "delivered messages/second; move times in ms",
        "quick": quick,
        "meta": bench_meta(sample=SAMPLE),
        "cpus": os.cpu_count(),
        "sample": SAMPLE,
        "disabled_overhead_limit_pct": DISABLED_OVERHEAD_LIMIT_PCT,
        "enabled_overhead_limit_pct": ENABLED_OVERHEAD_LIMIT_PCT,
        "results": results,
    }
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    failed = False
    if results["disabled_overhead_pct"] >= DISABLED_OVERHEAD_LIMIT_PCT:
        print(
            f"FAIL: disabled-mode overhead "
            f"{results['disabled_overhead_pct']}% >= "
            f"{DISABLED_OVERHEAD_LIMIT_PCT}%",
            file=sys.stderr,
        )
        failed = True
    if results["enabled_overhead_pct"] >= ENABLED_OVERHEAD_LIMIT_PCT:
        print(
            f"FAIL: enabled-mode overhead "
            f"{results['enabled_overhead_pct']}% >= "
            f"{ENABLED_OVERHEAD_LIMIT_PCT}%",
            file=sys.stderr,
        )
        failed = True
    if results["enabled_tracing_health_overhead_pct"] >= ENABLED_OVERHEAD_LIMIT_PCT:
        print(
            f"FAIL: tracing+heartbeats overhead "
            f"{results['enabled_tracing_health_overhead_pct']}% >= "
            f"{ENABLED_OVERHEAD_LIMIT_PCT}%",
            file=sys.stderr,
        )
        failed = True
    if failed:
        raise SystemExit(1)


if __name__ == "__main__":
    main(sys.argv[1:])
